#include "metrics/loop_detector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace bgpsim::metrics {
namespace {

using sim::SimTime;

TEST(LoopDetector, NoLoopsInitially) {
  LoopDetector d{5};
  EXPECT_EQ(d.active_count(), 0u);
  EXPECT_TRUE(d.records().empty());
}

TEST(LoopDetector, DetectsTwoNodeLoop) {
  // The paper's Figure 1(b): 5 -> 6 and 6 -> 5.
  LoopDetector d{7};
  d.on_next_hop_change(5, 6, SimTime::seconds(1));
  EXPECT_EQ(d.active_count(), 0u);
  d.on_next_hop_change(6, 5, SimTime::seconds(2));
  ASSERT_EQ(d.active_count(), 1u);
  const auto loops = d.active_loops();
  EXPECT_EQ(loops[0], (std::vector<net::NodeId>{5, 6}));
}

TEST(LoopDetector, ResolvesWhenNextHopChanges) {
  LoopDetector d{7};
  d.on_next_hop_change(5, 6, SimTime::seconds(1));
  d.on_next_hop_change(6, 5, SimTime::seconds(2));
  // Figure 1(c): node 6 switches to node 3; loop broken.
  d.on_next_hop_change(6, 3, SimTime::seconds(8));
  EXPECT_EQ(d.active_count(), 0u);
  ASSERT_EQ(d.records().size(), 1u);
  const LoopRecord& r = d.records()[0];
  EXPECT_EQ(r.formed_at, SimTime::seconds(2));
  ASSERT_TRUE(r.resolved_at.has_value());
  EXPECT_EQ(*r.resolved_at, SimTime::seconds(8));
  EXPECT_DOUBLE_EQ(r.duration_seconds(SimTime::seconds(100)), 6.0);
}

TEST(LoopDetector, DetectsLongCycle) {
  LoopDetector d{6};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 2, SimTime::seconds(1));
  d.on_next_hop_change(2, 3, SimTime::seconds(1));
  d.on_next_hop_change(3, 0, SimTime::seconds(2));
  ASSERT_EQ(d.active_count(), 1u);
  EXPECT_EQ(d.active_loops()[0].size(), 4u);
}

TEST(LoopDetector, CanonicalFormIsRotationInvariant) {
  LoopDetector d{6};
  // Build the cycle "entering" at different nodes; canonical member list
  // always starts at the smallest id.
  d.on_next_hop_change(4, 2, SimTime::seconds(1));
  d.on_next_hop_change(2, 5, SimTime::seconds(1));
  d.on_next_hop_change(5, 4, SimTime::seconds(1));
  ASSERT_EQ(d.active_count(), 1u);
  EXPECT_EQ(d.active_loops()[0], (std::vector<net::NodeId>{2, 5, 4}));
}

TEST(LoopDetector, TailNodesAreNotMembers) {
  // 0 -> 1 -> 2 -> 1: the cycle is {1, 2}; node 0 hangs off it.
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 2, SimTime::seconds(1));
  d.on_next_hop_change(2, 1, SimTime::seconds(1));
  ASSERT_EQ(d.active_count(), 1u);
  EXPECT_EQ(d.active_loops()[0], (std::vector<net::NodeId>{1, 2}));
}

TEST(LoopDetector, DisjointLoopsTrackedSeparately) {
  LoopDetector d{8};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 0, SimTime::seconds(1));
  d.on_next_hop_change(4, 5, SimTime::seconds(2));
  d.on_next_hop_change(5, 4, SimTime::seconds(2));
  EXPECT_EQ(d.active_count(), 2u);
  d.on_next_hop_change(1, 3, SimTime::seconds(5));
  EXPECT_EQ(d.active_count(), 1u);
  EXPECT_EQ(d.records().size(), 2u);
}

TEST(LoopDetector, ReformedLoopIsANewRecord) {
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 0, SimTime::seconds(1));
  d.on_next_hop_change(1, 2, SimTime::seconds(3));   // resolve
  d.on_next_hop_change(1, 0, SimTime::seconds(7));   // reform
  EXPECT_EQ(d.records().size(), 2u);
  EXPECT_EQ(d.active_count(), 1u);
  EXPECT_EQ(d.records()[1].formed_at, SimTime::seconds(7));
}

TEST(LoopDetector, ClearedRouteBreaksLoop) {
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 0, SimTime::seconds(1));
  d.on_next_hop_change(1, std::nullopt, SimTime::seconds(4));
  EXPECT_EQ(d.active_count(), 0u);
}

TEST(LoopDetector, FinalizeClosesActiveLoops) {
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 0, SimTime::seconds(2));
  d.finalize(SimTime::seconds(10));
  EXPECT_EQ(d.active_count(), 0u);
  ASSERT_EQ(d.records().size(), 1u);
  EXPECT_EQ(*d.records()[0].resolved_at, SimTime::seconds(10));
}

TEST(LoopDetector, ClearHistoryKeepsState) {
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 0, SimTime::seconds(2));
  d.on_next_hop_change(1, 2, SimTime::seconds(3));  // resolve
  d.clear_history();
  EXPECT_TRUE(d.records().empty());
  // The mirrored next-hop state survives: re-forming the loop with one
  // change is detected.
  d.on_next_hop_change(1, 0, SimTime::seconds(5));
  EXPECT_EQ(d.active_count(), 1u);
}

TEST(LoopDetector, ClearHistoryWithActiveLoopThrows) {
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(1, 0, SimTime::seconds(2));
  EXPECT_THROW(d.clear_history(), std::logic_error);
}

TEST(LoopDetector, RedundantChangeIgnored) {
  LoopDetector d{4};
  d.on_next_hop_change(0, 1, SimTime::seconds(1));
  d.on_next_hop_change(0, 1, SimTime::seconds(2));
  EXPECT_TRUE(d.records().empty());
}

TEST(LoopDetector, SelfLoopAtDestinationNotCounted) {
  // A node pointing at a node with no next hop is a dead end, not a loop.
  LoopDetector d{3};
  d.on_next_hop_change(1, 2, SimTime::seconds(1));
  d.on_next_hop_change(2, std::nullopt, SimTime::seconds(1));
  EXPECT_EQ(d.active_count(), 0u);
}

TEST(LoopDetector, IncrementalTrackingMatchesFullScan) {
  // Drive a pseudo-random sequence of next-hop rewrites and cross-check
  // the incremental active set against a from-scratch cycle scan after
  // every single change — the equivalence the incremental algorithm's
  // correctness argument claims.
  constexpr std::size_t kNodes = 37;
  LoopDetector d{kNodes};
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int step = 0; step < 2000; ++step) {
    const auto node = static_cast<net::NodeId>(next() % kNodes);
    std::optional<net::NodeId> hop;
    if (next() % 8 != 0) {  // 1-in-8 changes withdraw the route
      hop = static_cast<net::NodeId>(next() % kNodes);
      if (*hop == node) hop = std::nullopt;  // FIBs never point at self
    }
    d.on_next_hop_change(node, hop, SimTime::millis(step));
    ASSERT_TRUE(d.matches_full_scan()) << "after step " << step;
  }
  EXPECT_GT(d.loops_formed(), 0u);  // the walk actually exercised cycles
}

TEST(LoopDetector, SameInstantBurstMatchesFullScanAndSpacedDelivery) {
  // Batched MRAI delivery hands the detector several next-hop rewrites
  // carrying one identical timestamp. Loop bookkeeping must be a pure
  // function of the change order, not of timestamp spacing, and a loop
  // formed and resolved inside one burst is a zero-duration record.
  const std::vector<std::pair<net::NodeId, std::optional<net::NodeId>>>
      changes = {{0, 1}, {1, 2}, {2, 0},  // form {0, 1, 2}
                 {4, 5}, {5, 4},          // form {4, 5}
                 {2, 3}, {3, 0},          // resolve, then reform through 3
                 {5, std::nullopt},       // resolve {4, 5}
                 {5, 4}};                 // reform {4, 5}

  LoopDetector burst{8};
  const SimTime t = SimTime::seconds(9);
  for (const auto& [node, hop] : changes) {
    burst.on_next_hop_change(node, hop, t);
    ASSERT_TRUE(burst.matches_full_scan());
  }

  LoopDetector spaced{8};
  for (std::size_t i = 0; i < changes.size(); ++i) {
    spaced.on_next_hop_change(changes[i].first, changes[i].second,
                              t + SimTime::millis(static_cast<std::int64_t>(i)));
  }

  ASSERT_EQ(burst.records().size(), 4u);
  ASSERT_EQ(spaced.records().size(), burst.records().size());
  for (std::size_t i = 0; i < burst.records().size(); ++i) {
    EXPECT_EQ(burst.records()[i].members, spaced.records()[i].members);
  }
  EXPECT_EQ(burst.active_count(), 2u);
  EXPECT_EQ(spaced.active_count(), burst.active_count());

  // Loops resolved inside the burst close at the burst instant itself.
  for (const LoopRecord& r : burst.records()) {
    EXPECT_EQ(r.formed_at, t);
    if (r.resolved_at) {
      EXPECT_EQ(*r.resolved_at, t);
      EXPECT_DOUBLE_EQ(r.duration_seconds(SimTime::seconds(100)), 0.0);
    }
  }
}

}  // namespace
}  // namespace bgpsim::metrics
