// Property-style invariants checked across topology × protocol × seed
// sweeps (TEST_P).
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <string>
#include <tuple>

#include "bgp/network.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"
#include "topo/internet.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

enum class TopoCase { kClique8, kBClique5, kRing7, kGrid33, kInternet29 };

net::Topology build(TopoCase t, std::uint64_t seed) {
  switch (t) {
    case TopoCase::kClique8:
      return topo::make_clique(8);
    case TopoCase::kBClique5:
      return topo::make_bclique(5);
    case TopoCase::kRing7:
      return topo::make_ring(7);
    case TopoCase::kGrid33:
      return topo::make_grid(3, 3);
    case TopoCase::kInternet29:
      return topo::make_internet_preset(29, seed);
  }
  return net::Topology{};
}

std::string topo_name(TopoCase t) {
  switch (t) {
    case TopoCase::kClique8:
      return "Clique8";
    case TopoCase::kBClique5:
      return "BClique5";
    case TopoCase::kRing7:
      return "Ring7";
    case TopoCase::kGrid33:
      return "Grid33";
    case TopoCase::kInternet29:
      return "Internet29";
  }
  return "?";
}

using Param = std::tuple<TopoCase, Enhancement, std::uint64_t /*seed*/>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return topo_name(std::get<0>(info.param)) + "_" +
         std::string{to_string(std::get<1>(info.param))} + "_s" +
         std::to_string(std::get<2>(info.param));
}

class InvariantTest : public ::testing::TestWithParam<Param> {
 protected:
  void run_scenario() {
    const auto [topo_case, enhancement, seed] = GetParam();
    topo_ = build(topo_case, seed);

    BgpConfig config;
    config.mrai = sim::SimTime::seconds(30);
    config = config.with(enhancement);

    network_.emplace(sim_, topo_, config,
                     net::ProcessingDelay{sim::SimTime::millis(100),
                                          sim::SimTime::millis(500)},
                     sim::Rng{seed});

    // P2 (no node ever installs a path containing itself twice / through
    // itself) and P3 (announced paths follow topology edges) are asserted
    // continuously via the best-changed hook.
    network_->set_hooks(Speaker::Hooks{
        .on_update_sent = nullptr,
        .on_best_changed =
            [this](net::NodeId node, net::Prefix,
                   const std::optional<AsPath>& best) {
              if (!best) return;
              check_path_validity(node, *best);
            },
    });

    detector_.emplace(topo_.node_count());
    detector_->attach(sim_, network_->fibs(), kP);

    sim_.schedule_at(sim::SimTime::zero(),
                     [&] { network_->originate(0, kP); });
    sim_.run();
    ASSERT_FALSE(network_->busy());
  }

  void check_path_validity(net::NodeId node, const AsPath& path) {
    // Path starts at the node itself and ends at the origin.
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.first_hop(), node);
    // P2: no duplicates (in particular the node appears exactly once).
    const auto hops = path.hops();
    for (std::size_t i = 0; i < hops.size(); ++i) {
      for (std::size_t j = i + 1; j < hops.size(); ++j) {
        EXPECT_NE(hops[i], hops[j])
            << "duplicate AS in " << path.to_string();
      }
    }
    // P3: consecutive hops are topology edges.
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      EXPECT_TRUE(topo_.link_between(hops[i], hops[i + 1]).has_value())
          << "non-edge in " << path.to_string();
    }
  }

  void inject_event_and_drain() {
    const auto [topo_case, enhancement, seed] = GetParam();
    const auto t_event = sim_.now() + sim::SimTime::seconds(5);
    if (topo_case == TopoCase::kBClique5) {
      // Tlong on the B-Clique's direct attachment.
      sim_.schedule_at(t_event, [&] {
        network_->inject_link_failure(topo::bclique_tlong_link(topo_, 5));
      });
    } else {
      sim_.schedule_at(t_event, [&] { network_->inject_tdown(0, kP); });
    }
    sim_.run();
    ASSERT_FALSE(network_->busy());
  }

  sim::Simulator sim_;
  net::Topology topo_;
  std::optional<BgpNetwork> network_;
  std::optional<metrics::LoopDetector> detector_;
};

TEST_P(InvariantTest, QuiescentStateIsLoopFreeAndShortest) {
  run_scenario();
  detector_->finalize(sim_.now());
  // P1a: no active forwarding loop at quiescence.
  EXPECT_EQ(detector_->active_count(), 0u);
  // P1b: selected paths are shortest paths.
  const auto dist = topo_.bfs_distances(0);
  for (net::NodeId v = 1; v < topo_.node_count(); ++v) {
    const AsPath* loc = network_->speaker(v).loc_rib().get(kP);
    ASSERT_NE(loc, nullptr) << "node " << v;
    EXPECT_EQ(loc->length(), dist[v] + 1) << "node " << v;
  }
}

TEST_P(InvariantTest, PostEventQuiescenceIsConsistent) {
  run_scenario();
  inject_event_and_drain();
  detector_->finalize(sim_.now());
  EXPECT_EQ(detector_->active_count(), 0u);

  const auto [topo_case, enhancement, seed] = GetParam();
  if (topo_case == TopoCase::kBClique5) {
    // Tlong: everyone reconverges to valid (longer) paths.
    const auto dist = topo_.bfs_distances(0);
    for (net::NodeId v = 1; v < topo_.node_count(); ++v) {
      const AsPath* loc = network_->speaker(v).loc_rib().get(kP);
      ASSERT_NE(loc, nullptr) << "node " << v;
      EXPECT_EQ(loc->length(), dist[v] + 1) << "node " << v;
    }
  } else {
    // Tdown: everyone ends unreachable, FIBs empty.
    for (net::NodeId v = 0; v < topo_.node_count(); ++v) {
      EXPECT_EQ(network_->speaker(v).loc_rib().get(kP), nullptr)
          << "node " << v;
      EXPECT_FALSE(network_->fibs()[v].next_hop(kP).has_value())
          << "node " << v;
    }
  }
  // No messages stuck anywhere.
  EXPECT_EQ(network_->control_messages_in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantTest,
    ::testing::Combine(
        ::testing::Values(TopoCase::kClique8, TopoCase::kBClique5,
                          TopoCase::kRing7, TopoCase::kGrid33,
                          TopoCase::kInternet29),
        ::testing::Values(Enhancement::kStandard, Enhancement::kSsld,
                          Enhancement::kWrate, Enhancement::kAssertion,
                          Enhancement::kGhostFlushing),
        ::testing::Values(1u, 2u, 3u)),
    param_name);

}  // namespace
}  // namespace bgpsim::bgp
