// P5: the paper's §3.2 analytical bound — an m-node loop lasts at most
// (m-1) × M seconds plus nodal delays — checked against every loop the
// detector records in real runs.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bgp/config.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace bgpsim::core {
namespace {

using Param = std::tuple<TopologyKind, std::size_t, EventKind, double /*mrai*/,
                         bgp::Enhancement>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name =
      std::string{to_string(std::get<0>(info.param))} +
      std::to_string(std::get<1>(info.param)) + "_" +
      to_string(std::get<2>(info.param)) + "_M" +
      std::to_string(static_cast<int>(std::get<3>(info.param))) + "_" +
      bgp::to_string(std::get<4>(info.param));
  std::erase(name, '-');
  return name;
}

Scenario make_scenario(const Param& param) {
  const auto [kind, size, event, mrai, enhancement] = param;
  Scenario s;
  s.topology.kind = kind;
  s.topology.size = size;
  s.topology.topo_seed = 9;
  s.event = event;
  s.seed = 17;
  s.bgp = s.bgp.with(enhancement);
  s.bgp.mrai = sim::SimTime::seconds(mrai);
  return s;
}

class LoopBoundTest : public ::testing::TestWithParam<Param> {};

TEST_P(LoopBoundTest, EveryLoopRespectsAnalyticalBound) {
  const Scenario s = make_scenario(GetParam());
  const double mrai = s.bgp.mrai.as_seconds();

  const auto out = run_experiment(s);
  for (const auto& loop : out.metrics.loops) {
    const auto m = static_cast<double>(loop.size());
    ASSERT_GE(loop.size(), 2u);
    // (m-1)×M for the MRAI-delayed propagation around the loop, plus one
    // processing + propagation allowance per hop (each of the m-k+1
    // messages of §3.2 can additionally wait ≲0.5 s of CPU plus queueing
    // behind a handful of other updates).
    const double slack_s = m * 3.0 + 2.0;
    const double bound_s = (m - 1.0) * mrai + slack_s;
    EXPECT_LE(loop.duration_seconds(out.metrics.last_update_at), bound_s)
        << "loop of size " << loop.size() << " with MRAI " << mrai;
  }
}

TEST_P(LoopBoundTest, LoopSizesAreAtLeastTwo) {
  const Scenario s = make_scenario(GetParam());
  const std::size_t size = s.topology.size;
  const auto out = run_experiment(s);
  for (const auto& loop : out.metrics.loops) {
    EXPECT_GE(loop.size(), 2u);
    EXPECT_LE(loop.size(), s.topology.kind == TopologyKind::kBClique
                               ? 2 * size
                               : size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoopBoundTest,
    ::testing::Values(Param{TopologyKind::kClique, 8, EventKind::kTdown, 30,
                            bgp::Enhancement::kStandard},
                      Param{TopologyKind::kClique, 8, EventKind::kTdown, 10,
                            bgp::Enhancement::kStandard},
                      Param{TopologyKind::kBClique, 6, EventKind::kTlong, 30,
                            bgp::Enhancement::kStandard},
                      Param{TopologyKind::kInternet, 29, EventKind::kTdown,
                            30, bgp::Enhancement::kStandard}),
    param_name);

// The bound is a property of the *protocol class*, not of plain BGP: each
// enhancement changes which loops form, never how long one may persist.
// Internet-preset topologies exercise the irregular degree distributions
// where the analytical argument has the least slack.
INSTANTIATE_TEST_SUITE_P(
    InternetEnhancements, LoopBoundTest,
    ::testing::Combine(
        ::testing::Values(TopologyKind::kInternet),
        ::testing::Values(std::size_t{24}, std::size_t{32}),
        ::testing::Values(EventKind::kTdown, EventKind::kTlong),
        ::testing::Values(30.0),
        ::testing::Values(bgp::Enhancement::kSsld, bgp::Enhancement::kWrate,
                          bgp::Enhancement::kAssertion,
                          bgp::Enhancement::kGhostFlushing)),
    param_name);

}  // namespace
}  // namespace bgpsim::core
