// P4: same seed => identical metrics; different seed => (almost surely)
// different transient behavior.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace bgpsim::core {
namespace {

using Param = std::tuple<TopologyKind, std::size_t, EventKind>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::string{to_string(std::get<0>(info.param))} +
                     std::to_string(std::get<1>(info.param)) + "_" +
                     to_string(std::get<2>(info.param));
  std::erase(name, '-');  // "B-Clique" -> valid gtest identifier
  return name;
}

class DeterminismTest : public ::testing::TestWithParam<Param> {
 protected:
  Scenario scenario(std::uint64_t seed) const {
    const auto [kind, size, event] = GetParam();
    Scenario s;
    s.topology.kind = kind;
    s.topology.size = size;
    s.topology.topo_seed = 7;
    s.event = event;
    s.seed = seed;
    return s;
  }
};

TEST_P(DeterminismTest, SameSeedGivesBitIdenticalMetrics) {
  const auto a = run_experiment(scenario(11));
  const auto b = run_experiment(scenario(11));
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_EQ(a.failed_link, b.failed_link);
  EXPECT_EQ(a.metrics.convergence_time_s, b.metrics.convergence_time_s);
  EXPECT_EQ(a.metrics.looping_duration_s, b.metrics.looping_duration_s);
  EXPECT_EQ(a.metrics.ttl_exhaustions, b.metrics.ttl_exhaustions);
  EXPECT_EQ(a.metrics.looping_ratio, b.metrics.looping_ratio);
  EXPECT_EQ(a.metrics.loops_formed, b.metrics.loops_formed);
  EXPECT_EQ(a.metrics.updates_sent, b.metrics.updates_sent);
  EXPECT_EQ(a.metrics.packets_sent_total, b.metrics.packets_sent_total);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

TEST_P(DeterminismTest, DifferentSeedChangesTransients) {
  const auto a = run_experiment(scenario(11));
  const auto b = run_experiment(scenario(12));
  // Jitter and processing delays differ, so the event counts almost surely
  // do too. (Comparing several fields makes a coincidental collision on
  // all of them effectively impossible.)
  const bool identical =
      a.metrics.convergence_time_s == b.metrics.convergence_time_s &&
      a.metrics.ttl_exhaustions == b.metrics.ttl_exhaustions &&
      a.events_fired == b.events_fired;
  EXPECT_FALSE(identical);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismTest,
    ::testing::Values(Param{TopologyKind::kClique, 6, EventKind::kTdown},
                      Param{TopologyKind::kBClique, 5, EventKind::kTlong},
                      Param{TopologyKind::kInternet, 29, EventKind::kTdown}),
    param_name);

}  // namespace
}  // namespace bgpsim::core
