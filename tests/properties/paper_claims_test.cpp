// Regression-pins the paper's §V enhancement ordering on Internet-derived
// Tlong events: WRATE *worsens* looping relative to standard BGP (the
// paper reports an order of magnitude; our measured factor is ×1.2–1.5,
// deviation D1 in EXPERIMENTS.md — the direction is the stable claim),
// while Assertion and Ghost Flushing both reduce it.
//
// Trial count and seed are pinned: the inequalities below hold with wide
// margins at this configuration (probed across seeds before pinning), and
// the runs are deterministic, so a flip here means the protocol behavior
// changed, not the dice.
#include <gtest/gtest.h>

#include "bgp/config.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"

namespace bgpsim::core {
namespace {

constexpr std::size_t kSize = 48;
constexpr std::size_t kTrials = 24;
constexpr std::uint64_t kSeed = 7;

TrialSet run_enhancement(bgp::Enhancement e) {
  Scenario s;
  s.topology.kind = TopologyKind::kInternet;
  s.topology.size = kSize;
  s.topology.topo_seed = kSeed;
  s.event = EventKind::kTlong;
  s.seed = kSeed;
  s.bgp = s.bgp.with(e);
  return run_trials(s, RunOptions{.trials = kTrials});
}

class PaperClaimsTlong : public ::testing::Test {
 protected:
  // One shared run per enhancement for all assertions in this suite.
  static void SetUpTestSuite() {
    standard_ = new TrialSet{run_enhancement(bgp::Enhancement::kStandard)};
    wrate_ = new TrialSet{run_enhancement(bgp::Enhancement::kWrate)};
    assertion_ = new TrialSet{run_enhancement(bgp::Enhancement::kAssertion)};
    ghost_ = new TrialSet{run_enhancement(bgp::Enhancement::kGhostFlushing)};
  }
  static void TearDownTestSuite() {
    delete standard_;
    delete wrate_;
    delete assertion_;
    delete ghost_;
    standard_ = wrate_ = assertion_ = ghost_ = nullptr;
  }

  static TrialSet* standard_;
  static TrialSet* wrate_;
  static TrialSet* assertion_;
  static TrialSet* ghost_;
};

TrialSet* PaperClaimsTlong::standard_ = nullptr;
TrialSet* PaperClaimsTlong::wrate_ = nullptr;
TrialSet* PaperClaimsTlong::assertion_ = nullptr;
TrialSet* PaperClaimsTlong::ghost_ = nullptr;

TEST_F(PaperClaimsTlong, BaselineActuallyLoops) {
  // The comparisons below are vacuous unless standard BGP loops here.
  ASSERT_GT(standard_->looping_duration_s.mean, 1.0);
  ASSERT_GT(standard_->ttl_exhaustions.mean, 100.0);
}

TEST_F(PaperClaimsTlong, WrateWorsensLooping) {
  EXPECT_GT(wrate_->looping_duration_s.mean,
            standard_->looping_duration_s.mean);
  EXPECT_GT(wrate_->ttl_exhaustions.mean, standard_->ttl_exhaustions.mean);
}

TEST_F(PaperClaimsTlong, AssertionReducesLooping) {
  EXPECT_LT(assertion_->looping_duration_s.mean,
            standard_->looping_duration_s.mean);
  EXPECT_LT(assertion_->ttl_exhaustions.mean,
            standard_->ttl_exhaustions.mean);
}

TEST_F(PaperClaimsTlong, GhostFlushingReducesLooping) {
  EXPECT_LT(ghost_->looping_duration_s.mean,
            standard_->looping_duration_s.mean);
  EXPECT_LT(ghost_->ttl_exhaustions.mean, standard_->ttl_exhaustions.mean);
}

TEST_F(PaperClaimsTlong, ReductionsAreSubstantialNotMarginal) {
  // Assertion and Ghost Flushing are not within-noise improvements: both
  // cut exhaustions well below the baseline at this configuration.
  EXPECT_LT(assertion_->ttl_exhaustions.mean,
            0.8 * standard_->ttl_exhaustions.mean);
  EXPECT_LT(ghost_->ttl_exhaustions.mean,
            0.5 * standard_->ttl_exhaustions.mean);
}

}  // namespace
}  // namespace bgpsim::core
