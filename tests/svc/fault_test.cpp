// Fault tolerance: the campaign must survive workers dying mid-flight —
// including SIGKILL, which leaves no chance to say goodbye — and still
// merge to the exact single-process result: every trial present exactly
// once, digest bit-identical.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/sweep.hpp"
#include "svc/coordinator.hpp"
#include "svc/protocol.hpp"
#include "svc/transport.hpp"
#include "svc/worker.hpp"

namespace bgpsim::svc {
namespace {

core::Scenario clique(std::size_t size) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = size;
  s.event = core::EventKind::kTdown;
  s.seed = 11;
  return s;
}

CampaignSpec small_sweep() {
  CampaignSpec spec;
  spec.scenarios = {clique(5), clique(6)};
  spec.run.trials = 4;
  spec.unit_trials = 1;
  return spec;
}

std::uint64_t serial_digest(const CampaignSpec& spec) {
  std::vector<core::TrialSet> sets;
  for (const core::Scenario& s : spec.scenarios) {
    sets.push_back(core::run_trials(s, spec.run));
  }
  return campaign_digest(sets);
}

TEST(SvcFaultTest, SigkilledWorkerIsDetectedAndItsUnitRequeued) {
  const CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);

  CampaignOptions options;
  bool killed = false;
  options.on_unit_done = [&](Coordinator& c, std::size_t units_done) {
    // After the first completed unit, SIGKILL one worker outright. Its
    // in-flight unit (if any) must be requeued onto a survivor; no trial
    // may be lost or duplicated.
    if (units_done != 1 || killed) return;
    for (std::size_t i = 0; i < c.worker_count(); ++i) {
      const pid_t pid = c.worker_pid(i);
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        killed = true;
        break;
      }
    }
  };

  Coordinator coordinator{spec, options};
  for (int i = 0; i < 4; ++i) coordinator.spawn_fork_worker();
  const CampaignResult result = coordinator.run();

  ASSERT_TRUE(killed);
  EXPECT_EQ(result.workers_lost, 1u);
  EXPECT_EQ(result.digest, expected) << "merged campaign diverged from the "
                                        "single-process digest after a "
                                        "worker was SIGKILLed";
  ASSERT_EQ(result.sets.size(), 2u);
  EXPECT_EQ(result.sets[0].runs.size(), 4u);
  EXPECT_EQ(result.sets[1].runs.size(), 4u);
}

TEST(SvcFaultTest, EveryWorkerKilledFailsTheCampaignLoudly) {
  CampaignOptions options;
  options.on_unit_done = [](Coordinator& c, std::size_t units_done) {
    if (units_done != 1) return;
    for (std::size_t i = 0; i < c.worker_count(); ++i) {
      const pid_t pid = c.worker_pid(i);
      if (pid > 0) ::kill(pid, SIGKILL);
    }
  };
  Coordinator coordinator{small_sweep(), options};
  for (int i = 0; i < 2; ++i) coordinator.spawn_fork_worker();
  EXPECT_THROW((void)coordinator.run(), std::runtime_error);
}

TEST(SvcFaultTest, StalledWorkerBlowsItsDeadlineAndIsReplaced) {
  // Small units and a deadline with generous headroom over a real unit's
  // duration: sanitizer builds slow trials by an order of magnitude, and
  // the deadline must only ever fire for the stalled impostor below.
  CampaignSpec spec;
  spec.scenarios = {clique(5)};
  spec.run.trials = 3;
  spec.unit_trials = 1;
  const std::uint64_t expected = serial_digest(spec);

  // One impostor worker that completes the handshake, then sits on every
  // unit forever; one honest worker. The impostor's units must come back
  // via the deadline and finish on the honest worker.
  SocketPair pair = make_socketpair();
  const pid_t impostor = ::fork();
  ASSERT_GE(impostor, 0);
  if (impostor == 0) {
    pair.coordinator.close();
    (void)pair.worker.send_frame(
        encode_hello(Hello{0, static_cast<std::uint64_t>(::getpid())}));
    for (;;) ::pause();  // never answer a work frame
  }
  pair.worker.close();

  CampaignOptions options;
  options.deadline_s = 8;
  Coordinator coordinator{spec, options};
  coordinator.add_worker(std::move(pair.coordinator), impostor, -1);
  coordinator.spawn_fork_worker();
  const CampaignResult result = coordinator.run();

  EXPECT_GE(result.requeues, 1u);
  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_EQ(result.digest, expected);
}

TEST(SvcFaultTest, ProtocolViolationDropsTheWorkerNotTheCampaign) {
  const CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);

  // A worker that answers its first unit with garbage bytes. The
  // coordinator must treat the corrupt stream as a dead worker (the
  // stream cannot be resynchronized) and finish on the honest one.
  SocketPair pair = make_socketpair();
  const pid_t liar = ::fork();
  ASSERT_GE(liar, 0);
  if (liar == 0) {
    pair.coordinator.close();
    (void)pair.worker.send_frame(
        encode_hello(Hello{0, static_cast<std::uint64_t>(::getpid())}));
    // Wait for work, then reply with bytes that are not a frame.
    (void)pair.worker.recv_frame();
    const std::uint8_t garbage[32] = {0xBA, 0xAD};
    (void)::write(pair.worker.fd(), garbage, sizeof garbage);
    ::_exit(0);
  }
  pair.worker.close();

  Coordinator coordinator{spec, {}};
  coordinator.add_worker(std::move(pair.coordinator), liar, -1);
  coordinator.spawn_fork_worker();
  const CampaignResult result = coordinator.run();

  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_EQ(result.digest, expected);
}

TEST(SvcFaultTest, CrossVersionCoordinatorIsRejectedByWorkerPromptly) {
  // A worker handed a frame from a protocol-v3 coordinator must refuse it
  // through the shared version check and exit non-zero — not hang waiting
  // for bytes that will never parse, not serve the unit anyway.
  SocketPair pair = make_socketpair();
  const pid_t worker = ::fork();
  ASSERT_GE(worker, 0);
  if (worker == 0) {
    pair.coordinator.close();
    ::_exit(worker_loop(std::move(pair.worker), 0));
  }
  pair.worker.close();

  std::optional<Frame> hello = pair.coordinator.recv_frame();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->type, FrameType::kHello);

  Frame work;
  work.type = FrameType::kWork;
  work.payload = {1, 2, 3};
  const std::vector<std::uint8_t> v3_bytes = encode_frame(work, 3);
  ASSERT_EQ(::write(pair.coordinator.fd(), v3_bytes.data(), v3_bytes.size()),
            static_cast<ssize_t>(v3_bytes.size()));

  // The worker's EOF-or-exit must arrive promptly: block on its status
  // rather than sleeping, and require the explicit failure exit code.
  int status = 0;
  ASSERT_EQ(::waitpid(worker, &status, 0), worker);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
  // The stream is dead from the worker's side. The worker throws on the
  // frame header and exits without draining the payload bytes, so the
  // parent sees either clean EOF or a connection reset — never a frame.
  try {
    EXPECT_FALSE(pair.coordinator.recv_frame().has_value());
  } catch (const std::exception&) {
    // Connection reset by peer: the bad payload was still unread.
  }
}

}  // namespace
}  // namespace bgpsim::svc
