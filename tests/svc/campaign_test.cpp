// Campaign end-to-end determinism: a multi-process campaign must merge to
// results bit-identical to the in-process runners — at any worker count,
// any unit granularity, and over either transport — and must propagate a
// deterministic unit failure just like the serial runner rethrows it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/sweep.hpp"
#include "svc/coordinator.hpp"
#include "svc/protocol.hpp"
#include "svc/transport.hpp"
#include "svc/worker.hpp"

namespace bgpsim::svc {
namespace {

core::Scenario clique(std::size_t size) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = size;
  s.event = core::EventKind::kTdown;
  s.seed = 11;
  return s;
}

CampaignSpec small_sweep() {
  CampaignSpec spec;
  spec.scenarios = {clique(5), clique(6)};
  spec.run.trials = 4;
  spec.unit_trials = 1;
  return spec;
}

std::uint64_t serial_digest(const CampaignSpec& spec) {
  std::vector<core::TrialSet> sets;
  for (const core::Scenario& s : spec.scenarios) {
    sets.push_back(core::run_trials(s, spec.run));
  }
  return campaign_digest(sets);
}

TEST(SvcCampaignTest, MatchesInProcessRunnerAtAnyWorkerCount) {
  const CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const CampaignResult result = run_campaign(spec, workers);
    EXPECT_EQ(result.digest, expected);
    ASSERT_EQ(result.sets.size(), 2u);
    EXPECT_EQ(result.sets[0].runs.size(), 4u);
    EXPECT_EQ(result.sets[1].runs.size(), 4u);
    EXPECT_EQ(result.units_dispatched, 8u);
    EXPECT_EQ(result.requeues, 0u);
    EXPECT_EQ(result.workers_lost, 0u);
  }
}

TEST(SvcCampaignTest, UnitGranularityDoesNotChangeTheResult) {
  CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);
  for (const std::size_t unit_trials :
       {std::size_t{2}, std::size_t{3}, std::size_t{10}}) {
    SCOPED_TRACE("unit_trials=" + std::to_string(unit_trials));
    spec.unit_trials = unit_trials;
    EXPECT_EQ(run_campaign(spec, 2).digest, expected);
  }
}

TEST(SvcCampaignTest, TrialSetsMatchTheInProcessRunnerFieldByField) {
  const CampaignSpec spec = small_sweep();
  const CampaignResult result = run_campaign(spec, 3);
  ASSERT_EQ(result.sets.size(), 2u);
  for (std::size_t si = 0; si < spec.scenarios.size(); ++si) {
    SCOPED_TRACE("scenario " + std::to_string(si));
    const core::TrialSet serial =
        core::run_trials(spec.scenarios[si], spec.run);
    const core::TrialSet& merged = result.sets[si];
    ASSERT_EQ(merged.runs.size(), serial.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
      EXPECT_EQ(merged.runs[i].destination, serial.runs[i].destination);
      EXPECT_EQ(merged.runs[i].metrics.convergence_time_s,
                serial.runs[i].metrics.convergence_time_s);
      EXPECT_EQ(merged.runs[i].metrics.ttl_exhaustions,
                serial.runs[i].metrics.ttl_exhaustions);
    }
    // Bitwise, including the summary fold (same aggregation code path).
    EXPECT_EQ(merged.convergence_time_s.mean, serial.convergence_time_s.mean);
    EXPECT_EQ(merged.looping_duration_s.stddev,
              serial.looping_duration_s.stddev);
    EXPECT_EQ(trialset_digest(merged), trialset_digest(serial));
  }
}

TEST(SvcCampaignTest, TcpTransportProducesTheSameDigest) {
  const CampaignSpec spec = small_sweep();
  const std::uint64_t expected = serial_digest(spec);

  auto listener = TcpListener::bind_localhost(0);
  constexpr std::size_t kWorkers = 3;
  std::vector<pid_t> pids;
  for (std::uint64_t id = 0; id < kWorkers; ++id) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      Connection conn = connect_localhost(listener.port());
      ::_exit(worker_loop(std::move(conn), id));
    }
    pids.push_back(pid);
  }

  Coordinator coordinator{spec};
  for (std::size_t i = 0; i < kWorkers; ++i) {
    Connection conn = listener.accept_one(30'000);
    ASSERT_TRUE(conn.valid()) << "worker did not connect";
    auto hello_frame = conn.recv_frame();
    ASSERT_TRUE(hello_frame.has_value());
    const Hello hello = decode_hello(*hello_frame);
    ASSERT_LT(hello.worker_id, pids.size());
    coordinator.add_worker(std::move(conn), pids[hello.worker_id], -1);
  }
  const CampaignResult result = coordinator.run();
  EXPECT_EQ(result.digest, expected);
  EXPECT_EQ(result.workers_lost, 0u);
}

TEST(SvcCampaignTest, DeterministicUnitFailureFailsTheCampaign) {
  // A scenario that cannot converge inside max_sim_time throws the same
  // way on every worker; the campaign must surface that error instead of
  // retrying forever (requeues are for worker death, not unit bugs).
  CampaignSpec spec;
  core::Scenario s = clique(8);
  s.max_sim_time = sim::SimTime::seconds(1);
  spec.scenarios = {s};
  spec.run.trials = 2;
  EXPECT_THROW((void)run_campaign(spec, 2), std::runtime_error);
}

TEST(SvcCampaignTest, EmptyCampaignIsRejected) {
  EXPECT_THROW(Coordinator({}, {}), std::invalid_argument);
}

TEST(SvcCampaignTest, ScenarioWithHooksIsRejectedBeforeSpawning) {
  metrics::TraceRecorder trace;
  CampaignSpec spec = small_sweep();
  spec.scenarios[0].trace = &trace;
  EXPECT_THROW(Coordinator(std::move(spec), {}), std::invalid_argument);
}

TEST(SvcCampaignTest, DecomposeTrialsCoversExactly) {
  const auto units = core::decompose_trials(10, 3);
  ASSERT_EQ(units.size(), 4u);
  std::size_t next = 0;
  for (const core::TrialRange& r : units) {
    EXPECT_EQ(r.begin, next);
    EXPECT_GE(r.count, 1u);
    EXPECT_LE(r.count, 3u);
    next = r.begin + r.count;
  }
  EXPECT_EQ(next, 10u);
  EXPECT_TRUE(core::decompose_trials(0, 3).empty());
  EXPECT_EQ(core::decompose_trials(5, 0).size(), 5u);  // 0 resolves to 1
}

}  // namespace
}  // namespace bgpsim::svc
