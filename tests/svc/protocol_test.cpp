// Wire-protocol tests: round-trips for every frame and payload schema,
// plus hostile-input coverage — truncation, bad magic, version mismatch,
// oversized length prefixes, unknown frame types, and corrupt integrity
// trailers must all throw snap::FormatError with a precise message, never
// misparse.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "metrics/trace.hpp"
#include "snap/codec.hpp"
#include "svc/protocol.hpp"

namespace bgpsim::svc {
namespace {

core::Scenario small_clique() {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 5;
  s.event = core::EventKind::kTdown;
  s.seed = 11;
  return s;
}

std::vector<std::uint8_t> hello_bytes() {
  return encode_frame(encode_hello(Hello{7, 1234}));
}

// ---- frame envelope --------------------------------------------------------

TEST(SvcProtocolTest, FrameRoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kWork, FrameType::kResult,
        FrameType::kError, FrameType::kShutdown}) {
    Frame in;
    in.type = type;
    in.payload = {1, 2, 3, 4, 5};
    const std::vector<std::uint8_t> bytes = encode_frame(in);
    const Frame out = decode_frame(bytes);
    EXPECT_EQ(out.type, type);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(SvcProtocolTest, HeaderReportsPayloadLength) {
  const std::vector<std::uint8_t> bytes = hello_bytes();
  std::uint64_t payload_len = 0;
  EXPECT_EQ(decode_frame_header(bytes, payload_len), FrameType::kHello);
  EXPECT_EQ(payload_len, 16u);  // two u64s
  EXPECT_EQ(bytes.size(), kHeaderSize + payload_len + 8);
}

TEST(SvcProtocolTest, TruncatedHeaderThrows) {
  const std::vector<std::uint8_t> bytes = hello_bytes();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                 kHeaderSize - 1}) {
    std::uint64_t payload_len = 0;
    EXPECT_THROW(
        (void)decode_frame_header({bytes.data(), keep}, payload_len),
        snap::FormatError)
        << "kept " << keep << " byte(s)";
  }
}

TEST(SvcProtocolTest, TruncatedBodyThrows) {
  const std::vector<std::uint8_t> bytes = hello_bytes();
  // Every truncation point past the header: payload cut short, trailer cut
  // short, trailer missing entirely.
  for (std::size_t keep = kHeaderSize; keep < bytes.size(); ++keep) {
    EXPECT_THROW((void)decode_frame({bytes.data(), keep}), snap::FormatError)
        << "kept " << keep << " of " << bytes.size() << " byte(s)";
  }
}

TEST(SvcProtocolTest, TrailingBytesThrow) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  bytes.push_back(0);
  EXPECT_THROW((void)decode_frame(bytes), snap::FormatError);
}

TEST(SvcProtocolTest, BadMagicThrows) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  bytes[0] ^= 0xFF;
  std::uint64_t payload_len = 0;
  try {
    (void)decode_frame_header(bytes, payload_len);
    FAIL() << "bad magic accepted";
  } catch (const snap::FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("bad magic"), std::string::npos)
        << e.what();
  }
}

TEST(SvcProtocolTest, VersionMismatchThrowsBeforeTrustingAnything) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  bytes[8] = 0xFE;  // version lives at a fixed offset right after the magic
  std::uint64_t payload_len = 0;
  try {
    (void)decode_frame_header(bytes, payload_len);
    FAIL() << "future protocol version accepted";
  } catch (const snap::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported svc protocol version"), std::string::npos)
        << what;
    EXPECT_NE(what.find("this build speaks"), std::string::npos) << what;
  }
}

TEST(SvcProtocolTest, SharedVersionHelperMatchesTheWireConstant) {
  EXPECT_EQ(protocol_version(), kProtocolVersion);
  EXPECT_NO_THROW(check_protocol_version(kProtocolVersion, "frame header"));
  const std::uint32_t future = kProtocolVersion + 1;
  try {
    check_protocol_version(future, "journal header");
    FAIL() << "future protocol version accepted";
  } catch (const snap::FormatError& e) {
    const std::string what = e.what();
    // The one message every cross-version surface (frames, journals)
    // reports: the version seen, where, and what this build speaks.
    EXPECT_NE(what.find("unsupported svc protocol version " +
                        std::to_string(future)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("journal header"), std::string::npos) << what;
    EXPECT_NE(what.find("this build speaks"), std::string::npos) << what;
  }
}

TEST(SvcProtocolTest, EncodeFrameVersionOverrideRoundTripsTheField) {
  // encode_frame's version parameter exists so tests can forge frames
  // from other-version peers; the decoder must refuse them precisely.
  const std::uint32_t future = kProtocolVersion + 1;
  const std::vector<std::uint8_t> bytes =
      encode_frame(encode_hello(Hello{7, 1234}), future);
  std::uint64_t payload_len = 0;
  try {
    (void)decode_frame_header(bytes, payload_len);
    FAIL() << "future-version frame accepted by this build's decoder";
  } catch (const snap::FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("unsupported svc protocol version " +
                                         std::to_string(future)),
              std::string::npos)
        << e.what();
  }
}

TEST(SvcProtocolTest, UnknownFrameTypeThrows) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  bytes[12] = 99;  // type byte follows magic + version
  std::uint64_t payload_len = 0;
  EXPECT_THROW((void)decode_frame_header(bytes, payload_len),
               snap::FormatError);
}

TEST(SvcProtocolTest, OversizedLengthPrefixThrows) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  // Stamp a length just above the cap into the u64 at offset 13; a reader
  // must reject it from the header alone instead of trying to allocate.
  const std::uint64_t huge = kMaxPayload + 1;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[13 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  std::uint64_t payload_len = 0;
  try {
    (void)decode_frame_header(bytes, payload_len);
    FAIL() << "oversized length prefix accepted";
  } catch (const snap::FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("exceeds"), std::string::npos)
        << e.what();
  }
}

TEST(SvcProtocolTest, CorruptTrailerThrows) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  bytes.back() ^= 0x01;  // flip one bit of the FNV-1a trailer
  try {
    (void)decode_frame(bytes);
    FAIL() << "corrupt trailer accepted";
  } catch (const snap::FormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("integrity trailer mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(SvcProtocolTest, CorruptPayloadByteFailsTheTrailerCheck) {
  std::vector<std::uint8_t> bytes = hello_bytes();
  bytes[kHeaderSize] ^= 0x40;  // first payload byte
  EXPECT_THROW((void)decode_frame(bytes), snap::FormatError);
}

// ---- payload schemas -------------------------------------------------------

TEST(SvcProtocolTest, HelloRoundTrips) {
  const Hello out = decode_hello(encode_hello(Hello{42, 31337}));
  EXPECT_EQ(out.worker_id, 42u);
  EXPECT_EQ(out.pid, 31337u);
}

TEST(SvcProtocolTest, PayloadTypeMismatchThrows) {
  EXPECT_THROW((void)decode_work(encode_hello(Hello{})), snap::FormatError);
  EXPECT_THROW((void)decode_hello(encode_shutdown()), snap::FormatError);
}

TEST(SvcProtocolTest, WorkUnitRoundTrips) {
  WorkUnit in;
  in.unit_id = 9;
  in.scenario_index = 2;
  in.trial_begin = 4;
  in.trial_count = 3;
  in.scenario = small_clique();
  const WorkUnit out = decode_work(encode_work(in));
  EXPECT_EQ(out.unit_id, 9u);
  EXPECT_EQ(out.scenario_index, 2u);
  EXPECT_EQ(out.trial_begin, 4u);
  EXPECT_EQ(out.trial_count, 3u);
  EXPECT_EQ(out.scenario.topology.size, 5u);
  EXPECT_EQ(out.scenario.seed, 11u);
}

TEST(SvcProtocolTest, UnitErrorRoundTrips) {
  UnitError in;
  in.unit_id = 3;
  in.message = "convergence timeout: exceeded max_sim_time";
  const UnitError out = decode_error(encode_error(in));
  EXPECT_EQ(out.unit_id, 3u);
  EXPECT_EQ(out.message, in.message);
}

// ---- scenario codec --------------------------------------------------------

TEST(SvcProtocolTest, ScenarioRoundTripsEveryValueField) {
  core::Scenario in;
  in.topology.kind = core::TopologyKind::kInternet;
  in.topology.size = 33;
  in.topology.topo_seed = 77;
  in.event = core::EventKind::kFlap;
  in.bgp.mrai = sim::SimTime::seconds(17.5);
  in.bgp.jitter_lo = 0.72;
  in.bgp.jitter_hi = 0.99;
  in.bgp.ssld = true;
  in.bgp.ghost_flushing = true;
  in.bgp.backup_caution = sim::SimTime::seconds(1.25);
  in.processing.min = sim::SimTime::seconds(0.2);
  in.processing.max = sim::SimTime::seconds(0.4);
  in.traffic.interval = sim::SimTime::seconds(0.05);
  in.traffic.ttl = 64;
  in.traffic.stagger = false;
  in.policy_routing = true;
  in.seed = 0xDEADBEEFCAFEULL;
  in.destination = 13;
  in.tlong_link = 21;
  in.flap_interval = sim::SimTime::seconds(9);
  in.traffic_lead = sim::SimTime::seconds(3);
  in.settle_margin = sim::SimTime::seconds(7);
  in.max_sim_time = sim::SimTime::seconds(12345);
  in.snap_roundtrip = core::SnapRoundtrip::kVerify;
  in.snap_roundtrip_after = sim::SimTime::seconds(6);

  snap::Writer w;
  write_scenario(w, in);
  snap::Reader r{w.bytes()};
  const core::Scenario out = read_scenario(r);
  r.finish();

  EXPECT_EQ(out.topology.kind, in.topology.kind);
  EXPECT_EQ(out.topology.size, in.topology.size);
  EXPECT_EQ(out.topology.topo_seed, in.topology.topo_seed);
  EXPECT_EQ(out.event, in.event);
  EXPECT_EQ(out.bgp.mrai, in.bgp.mrai);
  EXPECT_EQ(out.bgp.jitter_lo, in.bgp.jitter_lo);
  EXPECT_EQ(out.bgp.jitter_hi, in.bgp.jitter_hi);
  EXPECT_EQ(out.bgp.ssld, in.bgp.ssld);
  EXPECT_EQ(out.bgp.wrate, in.bgp.wrate);
  EXPECT_EQ(out.bgp.assertion, in.bgp.assertion);
  EXPECT_EQ(out.bgp.ghost_flushing, in.bgp.ghost_flushing);
  EXPECT_EQ(out.bgp.backup_caution, in.bgp.backup_caution);
  EXPECT_EQ(out.processing.min, in.processing.min);
  EXPECT_EQ(out.processing.max, in.processing.max);
  EXPECT_EQ(out.traffic.interval, in.traffic.interval);
  EXPECT_EQ(out.traffic.ttl, in.traffic.ttl);
  EXPECT_EQ(out.traffic.stagger, in.traffic.stagger);
  EXPECT_EQ(out.policy_routing, in.policy_routing);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.destination, in.destination);
  EXPECT_EQ(out.tlong_link, in.tlong_link);
  EXPECT_EQ(out.flap_interval, in.flap_interval);
  EXPECT_EQ(out.traffic_lead, in.traffic_lead);
  EXPECT_EQ(out.settle_margin, in.settle_margin);
  EXPECT_EQ(out.max_sim_time, in.max_sim_time);
  EXPECT_EQ(out.snap_roundtrip, in.snap_roundtrip);
  EXPECT_EQ(out.snap_roundtrip_after, in.snap_roundtrip_after);
}

TEST(SvcProtocolTest, ScenarioWithUnsetOptionalsRoundTrips) {
  const core::Scenario in = small_clique();
  snap::Writer w;
  write_scenario(w, in);
  snap::Reader r{w.bytes()};
  const core::Scenario out = read_scenario(r);
  r.finish();
  EXPECT_FALSE(out.destination.has_value());
  EXPECT_FALSE(out.tlong_link.has_value());
}

TEST(SvcProtocolTest, ScenarioWithObserverHookIsRejected) {
  // Caller-owned hooks live in the coordinator's address space; shipping
  // the scenario would silently drop the observation. Refuse loudly.
  metrics::TraceRecorder trace;
  core::Scenario s = small_clique();
  s.trace = &trace;
  snap::Writer w;
  EXPECT_THROW(write_scenario(w, s), std::invalid_argument);
}

// ---- outcome codec + digests -----------------------------------------------

TEST(SvcProtocolTest, OutcomeRoundTripsBitIdentically) {
  // A real run's outcome (loops, activity profiles, timeline and all)
  // must survive the wire without perturbing a single bit.
  const core::ExperimentOutcome in =
      core::run_single_trial(small_clique(), 0);
  snap::Writer w;
  write_outcome(w, in);
  snap::Reader r{w.bytes()};
  const core::ExperimentOutcome out = read_outcome(r);
  r.finish();

  EXPECT_EQ(out.destination, in.destination);
  EXPECT_EQ(out.failed_link, in.failed_link);
  EXPECT_EQ(out.events_fired, in.events_fired);
  EXPECT_EQ(out.initial_convergence_s, in.initial_convergence_s);
  EXPECT_EQ(out.metrics.convergence_time_s, in.metrics.convergence_time_s);
  EXPECT_EQ(out.metrics.looping_duration_s, in.metrics.looping_duration_s);
  EXPECT_EQ(out.metrics.ttl_exhaustions, in.metrics.ttl_exhaustions);
  EXPECT_EQ(out.metrics.looping_ratio, in.metrics.looping_ratio);
  EXPECT_EQ(out.metrics.loops_formed, in.metrics.loops_formed);
  ASSERT_EQ(out.metrics.loops.size(), in.metrics.loops.size());
  for (std::size_t i = 0; i < in.metrics.loops.size(); ++i) {
    EXPECT_EQ(out.metrics.loops[i].members, in.metrics.loops[i].members);
    EXPECT_EQ(out.metrics.loops[i].formed_at, in.metrics.loops[i].formed_at);
    EXPECT_EQ(out.metrics.loops[i].resolved_at,
              in.metrics.loops[i].resolved_at);
  }
  EXPECT_EQ(out.metrics.loop_stats.total_loops,
            in.metrics.loop_stats.total_loops);
  EXPECT_EQ(out.metrics.loop_stats.by_size.size(),
            in.metrics.loop_stats.by_size.size());
  EXPECT_EQ(out.metrics.update_activity_1s, in.metrics.update_activity_1s);
  EXPECT_EQ(out.metrics.exhaustion_activity_1s,
            in.metrics.exhaustion_activity_1s);
  EXPECT_EQ(out.metrics.event_at, in.metrics.event_at);
  EXPECT_EQ(out.metrics.last_update_at, in.metrics.last_update_at);

  // Sharper than the field checks: encode the round-tripped outcome again
  // and require the exact same byte string.
  snap::Writer w2;
  write_outcome(w2, out);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(SvcProtocolTest, TrialsetDigestDetectsAnyDifference) {
  const core::TrialSet a =
      core::run_trials(small_clique(), core::RunOptions{.trials = 2, .jobs = 1});
  const core::TrialSet b =
      core::run_trials(small_clique(), core::RunOptions{.trials = 2, .jobs = 1});
  EXPECT_EQ(trialset_digest(a), trialset_digest(b));

  core::Scenario other = small_clique();
  other.seed = 12;
  const core::TrialSet c =
      core::run_trials(other, core::RunOptions{.trials = 2, .jobs = 1});
  EXPECT_NE(trialset_digest(a), trialset_digest(c));

  EXPECT_NE(campaign_digest({a}), campaign_digest({a, a}));
  EXPECT_EQ(campaign_digest({a, c}), campaign_digest({b, c}));
}

}  // namespace
}  // namespace bgpsim::svc
