// Whole-network convergence tests over BgpNetwork.
#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "topo/generators.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

/// Build a network with fast, deterministic processing so tests converge in
/// simulated milliseconds.
struct Harness {
  explicit Harness(net::Topology topology, BgpConfig config = quick_config())
      : topo{std::move(topology)},
        network{sim, topo, config, net::ProcessingDelay{sim::SimTime::millis(1),
                                                        sim::SimTime::millis(1)},
                sim::Rng{42}} {}

  static BgpConfig quick_config() {
    BgpConfig c;
    c.mrai = sim::SimTime::seconds(30);
    c.jitter_lo = 1.0;
    c.jitter_hi = 1.0;
    return c;
  }

  /// Originate at `origin` and run to full drain.
  void converge(net::NodeId origin) {
    sim.schedule_at(sim::SimTime::zero(),
                    [&, origin] { network.originate(origin, kP); });
    sim.run();
    ASSERT_FALSE(network.busy());
  }

  const AsPath* loc(net::NodeId n) { return network.speaker(n).loc_rib().get(kP); }

  sim::Simulator sim;
  net::Topology topo;
  BgpNetwork network;
};

TEST(Convergence, ChainConvergesToShortestPaths) {
  Harness h{topo::make_chain(5)};
  h.converge(0);
  ASSERT_NE(h.loc(4), nullptr);
  EXPECT_EQ(*h.loc(4), (AsPath{4, 3, 2, 1, 0}));
  EXPECT_EQ(*h.loc(1), (AsPath{1, 0}));
  EXPECT_EQ(h.network.fibs()[4].next_hop(kP), 3u);
}

TEST(Convergence, CliqueConvergesToDirectPaths) {
  Harness h{topo::make_clique(6)};
  h.converge(0);
  for (net::NodeId n = 1; n < 6; ++n) {
    ASSERT_NE(h.loc(n), nullptr) << "node " << n;
    EXPECT_EQ(*h.loc(n), (AsPath{n, 0})) << "node " << n;
    EXPECT_EQ(h.network.fibs()[n].next_hop(kP), 0u);
  }
}

TEST(Convergence, RingUsesShorterSide) {
  Harness h{topo::make_ring(6)};
  h.converge(0);
  EXPECT_EQ(*h.loc(1), (AsPath{1, 0}));
  EXPECT_EQ(*h.loc(5), (AsPath{5, 0}));
  EXPECT_EQ(*h.loc(2), (AsPath{2, 1, 0}));
  // Node 3 is equidistant; tie-break picks the smaller next hop (2).
  EXPECT_EQ(*h.loc(3), (AsPath{3, 2, 1, 0}));
}

TEST(Convergence, BCliqueInitialRoutesUseDirectAttachment) {
  const std::size_t n = 5;
  Harness h{topo::make_bclique(n)};
  h.converge(0);
  // Clique node n reaches 0 directly; other clique nodes go through n.
  EXPECT_EQ(*h.loc(5), (AsPath{5, 0}));
  EXPECT_EQ(*h.loc(7), (AsPath{7, 5, 0}));
  // Chain node 4 goes down the chain (4 hops) rather than through the
  // clique (4 -> 9 -> 5 -> 0 is 3 hops!). Check actual shortest: via 9 it
  // is (4 9 5 0), length 4 == chain path (4 3 2 1 0) length 5 -> clique.
  EXPECT_EQ(*h.loc(4), (AsPath{4, 9, 5, 0}));
}

TEST(Convergence, TdownLeavesEveryoneUnreachable) {
  Harness h{topo::make_clique(5)};
  h.converge(0);
  h.sim.schedule_at(h.sim.now() + sim::SimTime::seconds(100),
                    [&] { h.network.inject_tdown(0, kP); });
  h.sim.run();
  EXPECT_FALSE(h.network.busy());
  for (net::NodeId n = 1; n < 5; ++n) {
    EXPECT_EQ(h.loc(n), nullptr) << "node " << n;
    EXPECT_FALSE(h.network.fibs()[n].next_hop(kP).has_value());
  }
  // The origin no longer originates.
  EXPECT_EQ(h.loc(0), nullptr);
}

TEST(Convergence, TlongRespondsWithLongerPaths) {
  const std::size_t n = 4;
  Harness h{topo::make_bclique(n)};
  h.converge(0);
  const net::LinkId failed = topo::bclique_tlong_link(h.topo, n);
  h.sim.schedule_at(h.sim.now() + sim::SimTime::seconds(100),
                    [&] { h.network.inject_link_failure(failed); });
  h.sim.run();
  EXPECT_FALSE(h.network.busy());
  // Every node still reaches 0, now over the chain.
  for (net::NodeId v = 1; v < 2 * n; ++v) {
    ASSERT_NE(h.loc(v), nullptr) << "node " << v;
    EXPECT_EQ(h.loc(v)->origin(), 0u);
  }
  // Node n (=4) must now route via the clique to the chain tail.
  EXPECT_EQ(*h.loc(4), (AsPath{4, 7, 3, 2, 1, 0}));
}

TEST(Convergence, FinalPathsMatchBfsDistances) {
  Harness h{topo::make_grid(3, 3)};
  h.converge(0);
  const auto dist = h.topo.bfs_distances(0);
  for (net::NodeId v = 1; v < h.topo.node_count(); ++v) {
    ASSERT_NE(h.loc(v), nullptr);
    // Loc path includes self and origin: length == hops + 1.
    EXPECT_EQ(h.loc(v)->length(), dist[v] + 1) << "node " << v;
  }
}

TEST(Convergence, MessageCountsAreConsistent) {
  Harness h{topo::make_clique(5)};
  h.converge(0);
  const auto c = h.network.total_counters();
  EXPECT_EQ(c.announcements_sent + c.withdrawals_sent, c.updates_received);
  EXPECT_EQ(h.network.control_messages_in_flight(), 0u);
}

TEST(Convergence, SecondPrefixIndependent) {
  Harness h{topo::make_chain(4)};
  h.converge(0);
  h.sim.schedule_at(h.sim.now() + sim::SimTime::seconds(60),
                    [&] { h.network.originate(3, 1); });
  h.sim.run();
  ASSERT_NE(h.network.speaker(0).loc_rib().get(1), nullptr);
  EXPECT_EQ(*h.network.speaker(0).loc_rib().get(1), (AsPath{0, 1, 2, 3}));
  // Prefix 0 unchanged.
  EXPECT_EQ(*h.loc(3), (AsPath{3, 2, 1, 0}));
}

TEST(Convergence, LinkRestoreReconverges) {
  const std::size_t n = 4;
  Harness h{topo::make_bclique(n)};
  h.converge(0);
  const net::LinkId link = topo::bclique_tlong_link(h.topo, n);
  h.sim.schedule_at(h.sim.now() + sim::SimTime::seconds(100),
                    [&] { h.network.inject_link_failure(link); });
  h.sim.run();
  h.sim.schedule_at(h.sim.now() + sim::SimTime::seconds(100),
                    [&] { h.network.transport().restore_link(link); });
  h.sim.run();
  EXPECT_FALSE(h.network.busy());
  // Direct path restored.
  EXPECT_EQ(*h.loc(4), (AsPath{4, 0}));
}

}  // namespace
}  // namespace bgpsim::bgp
