// End-to-end distance-vector baseline: convergence, counting-to-infinity,
// and the loop-detection contrast with path vector (paper §2/§6).
#include <gtest/gtest.h>

#include "core/dv_experiment.hpp"
#include "core/experiment.hpp"
#include "dv/network.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"

namespace bgpsim {
namespace {

constexpr net::Prefix kP = 0;

/// Triggered-only: quiesces, good for plain convergence checks.
dv::DvConfig triggered_only() {
  dv::DvConfig c;
  c.periodic = sim::SimTime::zero();
  c.triggered_delay_lo = sim::SimTime::seconds(1);
  c.triggered_delay_hi = sim::SimTime::seconds(1);
  return c;
}

/// Periodic-only (the textbook counting-to-infinity setting): staleness is
/// re-advertised every refresh, so poisons race stale refreshes.
dv::DvConfig periodic_only() {
  dv::DvConfig c;
  c.triggered = false;
  c.periodic = sim::SimTime::seconds(10);
  return c;
}

TEST(DvNetwork, ChainConvergesToHopCounts) {
  sim::Simulator sim;
  auto topo = topo::make_chain(5);
  dv::DvNetwork network{sim, topo, triggered_only(),
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  sim.schedule_at(sim::SimTime::zero(), [&] { network.originate(0, kP); });
  sim.run();
  ASSERT_FALSE(network.busy());
  for (net::NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(network.speaker(v).metric(kP), static_cast<int>(v));
    EXPECT_EQ(network.speaker(v).next_hop(kP), v - 1);
    EXPECT_EQ(network.fibs()[v].next_hop(kP), v - 1);
  }
}

TEST(DvNetwork, TdownTriggersCleanPoisonOnChain) {
  // Triggered-only on a chain: the poison wave outruns any staleness (no
  // periodic carrier), so the withdrawal converges without loops.
  sim::Simulator sim;
  auto topo = topo::make_chain(4);
  dv::DvNetwork network{sim, topo, triggered_only(),
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(sim, network.fibs(), kP);
  sim.schedule_at(sim::SimTime::zero(), [&] { network.originate(0, kP); });
  sim.run();
  detector.clear_history();
  sim.schedule_at(sim.now() + sim::SimTime::seconds(5),
                  [&] { network.inject_tdown(0, kP); });
  sim.run();
  detector.finalize(sim.now());
  EXPECT_TRUE(detector.records().empty());
  for (net::NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(network.speaker(v).metric(kP).has_value()) << "node " << v;
  }
}

TEST(DvNetwork, TdownCountsToInfinityOnCliqueUnderPeriodicRefresh) {
  // Periodic-only refresh on a clique: every neighbor is a carrier of
  // stale reachability, so after the origin withdraws, metrics count up to
  // infinity while transient forwarding loops churn — the distance-vector
  // pathology the paper's §2 reviews. (Poison reverse cannot help: the
  // loop-forming advertisements were sent *before* the failure, when the
  // split-horizon filter did not apply — staleness again.)
  core::DvScenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 10;
  s.event = core::EventKind::kTdown;
  s.dv = periodic_only();
  s.seed = 1;
  const auto out = core::run_dv_experiment(s);
  // Counting takes many refresh rounds...
  EXPECT_GT(out.metrics.convergence_time_s, 30.0);
  // ...with real forwarding loops catching real packets.
  EXPECT_GT(out.metrics.loops_formed, 0u);
  EXPECT_GT(out.metrics.ttl_exhaustions, 100u);
  EXPECT_GT(out.metrics.looping_duration_s, 10.0);
}

TEST(DvNetwork, NoSplitHorizonAllowsTwoNodeLoops) {
  // Without split horizon even a loop-free chain bounces: node 2 echoes
  // node 1's own route back, and they count to infinity pairwise.
  sim::Simulator sim;
  auto topo = topo::make_chain(3);
  dv::DvConfig config = periodic_only();
  config.split_horizon = false;
  config.poison_reverse = false;
  dv::DvNetwork network{sim, topo, config,
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(sim, network.fibs(), kP);

  sim.schedule_at(sim::SimTime::zero(), [&] { network.originate(0, kP); });
  sim.run_until(sim::SimTime::seconds(60));
  detector.clear_history();
  sim.schedule_at(sim::SimTime::seconds(65),
                  [&] { network.inject_tdown(0, kP); });
  sim.run_until(sim::SimTime::seconds(600));
  detector.finalize(sim.now());

  bool saw_two_node = false;
  for (const auto& r : detector.records()) {
    if (r.size() == 2) saw_two_node = true;
  }
  EXPECT_TRUE(saw_two_node);
  for (net::NodeId v = 0; v < 3; ++v) {
    EXPECT_FALSE(network.speaker(v).metric(kP).has_value()) << "node " << v;
  }
}

TEST(DvNetwork, SplitHorizonPreventsTwoNodeLoops) {
  // Same chain, poison reverse on: the 2-node bounce is impossible, and on
  // a loop-free topology the withdrawal converges without any loop.
  sim::Simulator sim;
  auto topo = topo::make_chain(3);
  dv::DvNetwork network{sim, topo, periodic_only(),
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(sim, network.fibs(), kP);
  sim.schedule_at(sim::SimTime::zero(), [&] { network.originate(0, kP); });
  sim.run_until(sim::SimTime::seconds(60));
  detector.clear_history();
  sim.schedule_at(sim::SimTime::seconds(65),
                  [&] { network.inject_tdown(0, kP); });
  sim.run_until(sim::SimTime::seconds(600));
  detector.finalize(sim.now());
  EXPECT_TRUE(detector.records().empty());
  for (net::NodeId v = 0; v < 3; ++v) {
    EXPECT_FALSE(network.speaker(v).metric(kP).has_value()) << "node " << v;
  }
}

TEST(DvExperiment, DriverProducesComparableMetrics) {
  core::DvScenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 10;
  s.event = core::EventKind::kTdown;
  s.dv = periodic_only();
  s.seed = 1;
  const auto out = core::run_dv_experiment(s);
  EXPECT_GT(out.metrics.convergence_time_s, 0.0);
  EXPECT_GT(out.metrics.loops_formed, 0u);
  EXPECT_GT(out.metrics.ttl_exhaustions, 0u);
  // Fate conservation holds on the shared data plane.
  EXPECT_EQ(out.metrics.packets_sent_total,
            out.metrics.packets_delivered + out.metrics.ttl_exhaustions +
                out.metrics.packets_no_route + out.metrics.packets_link_down);
  // Looping ratio follows its definition.
  if (out.metrics.packets_sent_during_convergence > 0) {
    EXPECT_DOUBLE_EQ(
        out.metrics.looping_ratio,
        static_cast<double>(out.metrics.ttl_exhaustions) /
            static_cast<double>(out.metrics.packets_sent_during_convergence));
  }
}

TEST(DvExperiment, TriggeredOnlyModeQuiesces) {
  core::DvScenario s;
  s.topology.kind = core::TopologyKind::kChain;
  s.topology.size = 5;
  s.event = core::EventKind::kTdown;
  s.dv = triggered_only();
  s.seed = 5;
  const auto out = core::run_dv_experiment(s);
  EXPECT_GT(out.metrics.convergence_time_s, 0.0);
  EXPECT_EQ(out.metrics.loops_formed, 0u);  // chain + poison wave
}

TEST(DvExperiment, RejectsNoPropagationMode) {
  core::DvScenario s;
  s.topology.kind = core::TopologyKind::kRing;
  s.topology.size = 4;
  s.dv.periodic = sim::SimTime::zero();
  s.dv.triggered = false;
  EXPECT_THROW(core::run_dv_experiment(s), std::invalid_argument);
}

TEST(DvVsPv, CountingScalesWithInfinityUnlikePathVector) {
  // The distance-vector signature (paper §2): transient looping lasts as
  // long as the counting takes, i.e. it scales with the `infinity`
  // parameter. Path vector has no such parameter — its loop duration is
  // bounded by path propagation, (m-1) x MRAI (checked by the LoopBound
  // property suite).
  const auto run_with_infinity = [](int infinity) {
    core::DvScenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = 10;
    s.event = core::EventKind::kTdown;
    s.dv = periodic_only();
    s.dv.infinity = infinity;
    s.seed = 1;
    return core::run_dv_experiment(s).metrics;
  };
  const auto m8 = run_with_infinity(8);
  const auto m16 = run_with_infinity(16);
  const auto m32 = run_with_infinity(32);

  ASSERT_GT(m16.loops_formed, 0u);
  // Convergence time ~ counting rounds ~ infinity.
  EXPECT_GT(m16.convergence_time_s, 1.2 * m8.convergence_time_s);
  EXPECT_GT(m32.convergence_time_s, 1.5 * m16.convergence_time_s);
  // And the looping persists throughout the counting.
  EXPECT_GT(m32.looping_duration_s, 1.5 * m16.looping_duration_s);
  EXPECT_GT(m32.ttl_exhaustions, m16.ttl_exhaustions);
}

}  // namespace
}  // namespace bgpsim
