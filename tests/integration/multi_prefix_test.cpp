// Multi-prefix scenarios: the machinery is keyed by prefix throughout, so
// several destinations coexist on one network; events on one prefix must
// not disturb another.
#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "fwd/engine.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"

namespace bgpsim {
namespace {

class MultiPrefixTest : public ::testing::Test {
 protected:
  MultiPrefixTest()
      : topo_{topo::make_ring(6)},
        network_{sim_, topo_, config(), net::ProcessingDelay{
                                            sim::SimTime::millis(1),
                                            sim::SimTime::millis(1)},
                 sim::Rng{9}},
        // prefix 0 lives at node 0, prefix 1 at node 3
        plane_{sim_, topo_, network_.fibs(),
               fwd::DataPlaneOptions{.destinations = {0, 3}}} {}

  static bgp::BgpConfig config() {
    bgp::BgpConfig c;
    c.jitter_lo = 1.0;
    c.jitter_hi = 1.0;
    return c;
  }

  void converge_both() {
    sim_.schedule_at(sim::SimTime::zero(), [&] {
      network_.originate(0, 0);
      network_.originate(3, 1);
    });
    sim_.run();
    ASSERT_FALSE(network_.busy());
  }

  sim::Simulator sim_;
  net::Topology topo_;
  bgp::BgpNetwork network_;
  fwd::DataPlane plane_;
};

TEST_F(MultiPrefixTest, BothPrefixesConvergeIndependently) {
  converge_both();
  // Node 1: prefix 0 direct, prefix 1 via 2.
  EXPECT_EQ(*network_.speaker(1).loc_rib().get(0), (bgp::AsPath{1, 0}));
  EXPECT_EQ(*network_.speaker(1).loc_rib().get(1), (bgp::AsPath{1, 2, 3}));
  EXPECT_EQ(network_.fibs()[1].next_hop(0), 0u);
  EXPECT_EQ(network_.fibs()[1].next_hop(1), 2u);
}

TEST_F(MultiPrefixTest, DataPlaneRoutesPerPrefix) {
  converge_both();
  plane_.inject(fwd::Injection{.source = 5, .prefix = 0});  // toward node 0
  plane_.inject(fwd::Injection{.source = 5, .prefix = 1});  // toward node 3
  sim_.run();
  EXPECT_EQ(plane_.counters().delivered, 2u);
  EXPECT_EQ(plane_.counters().injected, 2u);
}

TEST_F(MultiPrefixTest, TdownOnOnePrefixLeavesOtherIntact) {
  converge_both();
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(60),
                   [&] { network_.speaker(0).withdraw_origin(0); });
  sim_.run();
  ASSERT_FALSE(network_.busy());
  for (net::NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(network_.speaker(v).loc_rib().get(0), nullptr) << "node " << v;
    if (v != 3) {
      ASSERT_NE(network_.speaker(v).loc_rib().get(1), nullptr)
          << "node " << v;
      EXPECT_EQ(network_.speaker(v).loc_rib().get(1)->origin(), 3u);
    }
  }
  // Data plane: prefix 0 black-holes, prefix 1 still delivers.
  plane_.inject(fwd::Injection{.source = 5, .prefix = 0});
  plane_.inject(fwd::Injection{.source = 5, .prefix = 1});
  sim_.run();
  EXPECT_EQ(plane_.counters().delivered, 1u);
  EXPECT_EQ(plane_.counters().no_route, 1u);
}

TEST_F(MultiPrefixTest, PerPrefixMraiTimersAreIndependent) {
  converge_both();
  // A flap on prefix 0 must not delay prefix-1 advertisements: MRAI is
  // keyed per (peer, prefix).
  auto& origin0 = network_.speaker(0);
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(60), [&] {
    origin0.withdraw_origin(0);
    origin0.originate(0);  // immediate re-announce: held by prefix-0 timers
  });
  std::uint64_t best_changes_p1 = 0;
  network_.set_hooks(bgp::Speaker::Hooks{
      .on_update_sent = nullptr,
      .on_best_changed =
          [&](net::NodeId, net::Prefix prefix,
              const std::optional<bgp::AsPath>&) {
            if (prefix == 1) ++best_changes_p1;
          },
  });
  sim_.run();
  ASSERT_FALSE(network_.busy());
  EXPECT_EQ(best_changes_p1, 0u);  // prefix 1 untouched by the flap
  // Prefix 0 is reachable again everywhere.
  for (net::NodeId v = 1; v < 6; ++v) {
    EXPECT_NE(network_.speaker(v).loc_rib().get(0), nullptr) << "node " << v;
  }
}

TEST_F(MultiPrefixTest, LoopDetectorsTrackPrefixesSeparately) {
  converge_both();
  metrics::LoopDetector det1{topo_.node_count()};
  // attach() filters by prefix: a detector watching prefix 1 sees no
  // change when prefix 0 flaps.
  det1.attach(sim_, network_.fibs(), 1);
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(60),
                   [&] { network_.speaker(0).withdraw_origin(0); });
  sim_.run();
  det1.finalize(sim_.now());
  EXPECT_TRUE(det1.records().empty());
}

}  // namespace
}  // namespace bgpsim
