// Policy routing end to end on the new scale path: exact Gao-Rexford RIBs
// on a hand-built fixture, valley-free export filtering, digest equality
// across execution modes, and a 10k-node run under the full oracle.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "bgp/network.hpp"
#include "bgp/policy.hpp"
#include "check/oracle.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "svc/coordinator.hpp"
#include "svc/protocol.hpp"

namespace bgpsim {
namespace {

constexpr net::Prefix kP = 0;

/// Run one origination to quiescence and return each node's Loc-RIB best
/// (empty path = unreachable).
std::vector<bgp::AsPath> converge(net::Topology& topo,
                                  const net::RelationshipTable& rel,
                                  net::NodeId dest) {
  sim::Simulator simulator;
  bgp::BgpConfig config;
  config.policy = &rel;
  bgp::BgpNetwork network{simulator, topo, config,
                          net::ProcessingDelay{sim::SimTime::millis(1),
                                               sim::SimTime::millis(1)},
                          sim::Rng{5}};
  simulator.schedule_at(sim::SimTime::zero(),
                        [&] { network.originate(dest, kP); });
  simulator.run();
  EXPECT_FALSE(network.busy());
  std::vector<bgp::AsPath> best(topo.node_count());
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    const bgp::AsPath* loc = network.speaker(v).loc_rib().get(kP);
    if (loc) best[v] = *loc;
  }
  return best;
}

TEST(PolicyFixture, FiveAsFixtureConvergesToTheKnownRibs) {
  // 0 -- 1 peering at the top; 0 and 1 both provide for 2; 1 provides for
  // 3; 2 provides for 4. Destination 4 is 2's customer.
  //
  //        0 ===== 1
  //         \     /|
  //          \   / |
  //            2   3
  //            |
  //            4  (origin)
  net::Topology topo;
  topo.add_nodes(5);
  topo.add_link(0, 1);
  topo.add_link(0, 2);
  topo.add_link(1, 2);
  topo.add_link(1, 3);
  topo.add_link(2, 4);
  net::RelationshipTable rel;
  rel.set_peering(0, 1);
  rel.set_provider_customer(0, 2);
  rel.set_provider_customer(1, 2);
  rel.set_provider_customer(1, 3);
  rel.set_provider_customer(2, 4);

  const auto best = converge(topo, rel, 4);
  // 1 hears [1,0,2,4] from its peer 0 too, but the customer route through
  // 2 wins on local preference despite equal or longer competition never
  // arising; 3 only ever hears its provider 1.
  EXPECT_EQ(best[0], (bgp::AsPath{0, 2, 4}));
  EXPECT_EQ(best[1], (bgp::AsPath{1, 2, 4}));
  EXPECT_EQ(best[2], (bgp::AsPath{2, 4}));
  EXPECT_EQ(best[3], (bgp::AsPath{3, 1, 2, 4}));
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    if (v == 4 || best[v].length() == 0) continue;
    EXPECT_TRUE(bgp::valley_free(rel, best[v])) << "node " << v;
  }
}

TEST(PolicyFixture, NoFreeTransitHidesPeerRoutesFromProviders) {
  // 0 provides for 1; 1 peers with 2; 2 provides for 3 (the origin).
  // 1 learns the route from its peer 2 and must NOT pass it up to its
  // provider 0 — 0 stays unreachable, exactly the no-free-transit rule.
  net::Topology topo;
  topo.add_nodes(4);
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  net::RelationshipTable rel;
  rel.set_provider_customer(0, 1);
  rel.set_peering(1, 2);
  rel.set_provider_customer(2, 3);

  const auto best = converge(topo, rel, 3);
  EXPECT_EQ(best[2], (bgp::AsPath{2, 3}));
  EXPECT_EQ(best[1], (bgp::AsPath{1, 2, 3}));
  EXPECT_EQ(best[0].length(), 0u) << "peer-learned route leaked upstream: "
                                  << best[0].to_string();
}

core::Scenario policy_scenario(std::size_t nodes) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kAsGraph;
  s.topology.size = nodes;
  s.topology.topo_seed = 1;
  s.event = core::EventKind::kTdown;
  s.policy_routing = true;
  s.bgp.mrai = sim::SimTime::seconds(5);
  s.seed = 1;
  return s;
}

TEST(PolicyScale, DigestsAreIdenticalAcrossJobsAndWorkers) {
  const core::Scenario s = policy_scenario(128);
  core::RunOptions options;
  options.trials = 4;

  options.jobs = 1;
  const std::uint64_t expected =
      svc::trialset_digest(core::run_trials(s, options));
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    options.jobs = jobs;
    EXPECT_EQ(svc::trialset_digest(core::run_trials(s, options)), expected)
        << "jobs=" << jobs;
  }

  svc::CampaignSpec spec;
  spec.scenarios = {s};
  spec.run.trials = options.trials;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto result = svc::run_campaign(spec, workers);
    ASSERT_EQ(result.sets.size(), 1u);
    EXPECT_EQ(svc::trialset_digest(result.sets[0]), expected)
        << "workers=" << workers;
  }
}

TEST(PolicyScale, TenThousandNodesRunToQuiescenceUnderTheOracle) {
  core::Scenario s = policy_scenario(10000);
  check::Oracle oracle = check::Oracle::standard();
  s.oracle = &oracle;
  const auto out = core::run_experiment(s);
  EXPECT_TRUE(oracle.ok()) << oracle.summary();
  EXPECT_GT(oracle.observations(), 0u);
  EXPECT_GT(out.metrics.convergence_time_s, 0.0);
}

}  // namespace
}  // namespace bgpsim
