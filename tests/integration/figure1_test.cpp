// Reproduces the paper's Figure 1 walkthrough exactly: the 2-node transient
// loop between nodes 5 and 6 after link [4 0] fails, and its resolution via
// path-based poison reverse.
#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

/// The Figure 1 topology: destination at node 0; node 4 directly attached;
/// nodes 5 and 6 hang off node 4 (and each other); node 6 also has the long
/// backup (6 3 2 1 0).
net::Topology figure1_topology() {
  net::Topology t{7};
  t.add_link(0, 1);
  t.add_link(1, 2);
  t.add_link(2, 3);
  t.add_link(3, 6);
  t.add_link(0, 4);
  t.add_link(4, 5);
  t.add_link(4, 6);
  t.add_link(5, 6);
  return t;
}

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test()
      : topo_{figure1_topology()},
        network_{sim_, topo_, config(), net::ProcessingDelay{
                                            sim::SimTime::millis(100),
                                            sim::SimTime::millis(500)},
                 sim::Rng{7}},
        detector_{topo_.node_count()} {
    detector_.attach(sim_, network_.fibs(), kP);
  }

  static BgpConfig config() {
    BgpConfig c;
    c.mrai = sim::SimTime::seconds(30);
    return c;
  }

  const AsPath* loc(net::NodeId n) {
    return network_.speaker(n).loc_rib().get(kP);
  }

  void converge_initially() {
    sim_.schedule_at(sim::SimTime::zero(),
                     [&] { network_.originate(0, kP); });
    sim_.run();
    ASSERT_FALSE(network_.busy());
  }

  sim::Simulator sim_;
  net::Topology topo_;
  BgpNetwork network_;
  metrics::LoopDetector detector_;
};

TEST_F(Figure1Test, InitialStateMatchesFigure1a) {
  converge_initially();
  // Figure 1(a): starred best paths.
  ASSERT_NE(loc(4), nullptr);
  EXPECT_EQ(*loc(4), (AsPath{4, 0}));
  EXPECT_EQ(*loc(5), (AsPath{5, 4, 0}));
  EXPECT_EQ(*loc(6), (AsPath{6, 4, 0}));
  // And the backups listed in the figure sit in the Adj-RIB-Ins.
  const AsPath* five_via_six = network_.speaker(5).adj_rib_in().get(kP, 6);
  ASSERT_NE(five_via_six, nullptr);
  EXPECT_EQ(*five_via_six, (AsPath{6, 4, 0}));
  const AsPath* six_via_three = network_.speaker(6).adj_rib_in().get(kP, 3);
  ASSERT_NE(six_via_three, nullptr);
  EXPECT_EQ(*six_via_three, (AsPath{3, 2, 1, 0}));
  // No loops during/after initial convergence in this topology run.
  detector_.finalize(sim_.now());
  EXPECT_EQ(detector_.active_count(), 0u);
}

TEST_F(Figure1Test, TransientLoopFormsAndResolves) {
  converge_initially();
  detector_.clear_history();

  const auto link40 = topo_.link_between(4, 0);
  ASSERT_TRUE(link40.has_value());
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(5),
                   [&] { network_.inject_link_failure(*link40); });
  sim_.run();
  ASSERT_FALSE(network_.busy());
  detector_.finalize(sim_.now());

  // Figure 1(b): the 5<->6 loop formed...
  bool saw_56_loop = false;
  for (const auto& r : detector_.records()) {
    if (r.members == std::vector<net::NodeId>{5, 6}) saw_56_loop = true;
  }
  EXPECT_TRUE(saw_56_loop);

  // ...and Figure 1(c): it resolved — final routes use the long path.
  EXPECT_EQ(detector_.active_count(), 0u);
  ASSERT_NE(loc(6), nullptr);
  EXPECT_EQ(*loc(6), (AsPath{6, 3, 2, 1, 0}));
  ASSERT_NE(loc(5), nullptr);
  EXPECT_EQ(*loc(5), (AsPath{5, 6, 3, 2, 1, 0}));
  ASSERT_NE(loc(4), nullptr);
  EXPECT_EQ(*loc(4), (AsPath{4, 6, 3, 2, 1, 0}));
}

TEST_F(Figure1Test, LoopMembersPickedObsoletePaths) {
  // Sanity on the mechanism: right after the withdrawal, 5 holds the
  // obsolete (6 4 0) entry from 6 and adopts it — the paper's §3.3 point
  // that full path information does not prevent picking obsolete paths.
  converge_initially();
  const auto link40 = topo_.link_between(4, 0);
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(5),
                   [&] { network_.inject_link_failure(*link40); });

  bool five_adopted_obsolete = false;
  network_.set_hooks(Speaker::Hooks{
      .on_update_sent = nullptr,
      .on_best_changed =
          [&](net::NodeId node, net::Prefix, const std::optional<AsPath>& best) {
            if (node == 5 && best && *best == AsPath{5, 6, 4, 0}) {
              five_adopted_obsolete = true;
            }
          },
  });
  sim_.run();
  EXPECT_TRUE(five_adopted_obsolete);
}

TEST_F(Figure1Test, SsldShortensTheLoop) {
  // With SSLD (paper §5): node 5 would send a withdrawal instead of
  // (5 6 4 0) to node 6 — MRAI-exempt — so the loop's resolution no longer
  // waits on an announcement. The loop should resolve strictly faster or
  // equally fast in message count terms; here we check SSLD conversions
  // actually fire in this scenario.
  sim::Simulator sim2;
  net::Topology topo2 = figure1_topology();
  BgpNetwork net2{sim2, topo2, config().with(Enhancement::kSsld),
                  net::ProcessingDelay{sim::SimTime::millis(100),
                                       sim::SimTime::millis(500)},
                  sim::Rng{7}};
  sim2.schedule_at(sim::SimTime::zero(), [&] { net2.originate(0, kP); });
  sim2.run();
  const auto link40 = topo2.link_between(4, 0);
  sim2.schedule_at(sim2.now() + sim::SimTime::seconds(5),
                   [&] { net2.inject_link_failure(*link40); });
  sim2.run();
  EXPECT_GT(net2.total_counters().ssld_conversions, 0u);
  // Network still converges to the same final routes.
  ASSERT_NE(net2.speaker(6).loc_rib().get(kP), nullptr);
  EXPECT_EQ(*net2.speaker(6).loc_rib().get(kP), (AsPath{6, 3, 2, 1, 0}));
}

}  // namespace
}  // namespace bgpsim::bgp
