// End-to-end enhancement comparisons on fixed seeds — the paper's §5
// qualitative claims, checked as regressions at small scale.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace bgpsim::core {
namespace {

metrics::RunMetrics run(TopologyKind kind, std::size_t size, EventKind event,
                        bgp::Enhancement e, std::uint64_t seed = 3) {
  Scenario s;
  s.topology.kind = kind;
  s.topology.size = size;
  s.topology.topo_seed = seed;
  s.event = event;
  s.bgp = s.bgp.with(e);
  s.seed = seed;
  return run_experiment(s).metrics;
}

TEST(EnhancementE2E, AssertionConvergesCliqueTdownNearInstantly) {
  // Paper §5: "In the Clique topologies, all other nodes ... achieve
  // immediate convergence after receiving the withdrawal from node 0."
  const auto m =
      run(TopologyKind::kClique, 8, EventKind::kTdown,
          bgp::Enhancement::kAssertion);
  EXPECT_LT(m.convergence_time_s, 2.0);
  EXPECT_EQ(m.ttl_exhaustions, 0u);
}

TEST(EnhancementE2E, StandardCliqueTdownLoopsThroughoutConvergence) {
  const auto m = run(TopologyKind::kClique, 8, EventKind::kTdown,
                     bgp::Enhancement::kStandard);
  EXPECT_GT(m.convergence_time_s, 30.0);
  EXPECT_GT(m.looping_ratio, 0.3);
}

TEST(EnhancementE2E, GhostFlushingSlashesCliqueTdownConvergence) {
  const auto standard = run(TopologyKind::kClique, 8, EventKind::kTdown,
                            bgp::Enhancement::kStandard);
  const auto ghost = run(TopologyKind::kClique, 8, EventKind::kTdown,
                         bgp::Enhancement::kGhostFlushing);
  EXPECT_LT(ghost.convergence_time_s, 0.3 * standard.convergence_time_s);
  EXPECT_LT(ghost.ttl_exhaustions, standard.ttl_exhaustions);
}

TEST(EnhancementE2E, GhostFlushingCutsExhaustionsHeavily) {
  // Paper: "Ghost Flushing reduces packet looping by at least 80% in
  // Clique topologies and Internet-derived topologies."
  const auto standard = run(TopologyKind::kInternet, 29, EventKind::kTdown,
                            bgp::Enhancement::kStandard);
  const auto ghost = run(TopologyKind::kInternet, 29, EventKind::kTdown,
                         bgp::Enhancement::kGhostFlushing);
  ASSERT_GT(standard.ttl_exhaustions, 0u);
  EXPECT_LT(static_cast<double>(ghost.ttl_exhaustions),
            0.3 * static_cast<double>(standard.ttl_exhaustions));
}

TEST(EnhancementE2E, SsldReducesCliqueTdownConvergenceSomewhat) {
  const auto standard = run(TopologyKind::kClique, 8, EventKind::kTdown,
                            bgp::Enhancement::kStandard);
  const auto ssld = run(TopologyKind::kClique, 8, EventKind::kTdown,
                        bgp::Enhancement::kSsld);
  EXPECT_LT(ssld.convergence_time_s, standard.convergence_time_s);
  // But unlike Assertion it does not eliminate looping.
  EXPECT_GT(ssld.ttl_exhaustions, 0u);
}

TEST(EnhancementE2E, WrateStretchesLoopDurationInBClique) {
  // Paper Fig. 9: WRATE reduces B-Clique Tlong exhaustion counts somewhat
  // but stretches looping/convergence; check the count-reduction direction.
  const auto standard = run(TopologyKind::kBClique, 8, EventKind::kTlong,
                            bgp::Enhancement::kStandard);
  const auto wrate = run(TopologyKind::kBClique, 8, EventKind::kTlong,
                         bgp::Enhancement::kWrate);
  ASSERT_GT(standard.ttl_exhaustions, 0u);
  EXPECT_LT(wrate.ttl_exhaustions, standard.ttl_exhaustions);
}

TEST(EnhancementE2E, AllVariantsReachTheSameTlongRoutes) {
  // Enhancements change transients, not the converged outcome.
  for (const auto e : bgp::kAllEnhancements) {
    const auto m = run(TopologyKind::kBClique, 6, EventKind::kTlong, e);
    // Destination stays reachable: the bulk of post-convergence traffic is
    // delivered under every variant.
    EXPECT_GT(m.packets_delivered, 0u) << to_string(e);
  }
}

TEST(EnhancementE2E, AssertionWeakerOnInternetThanClique) {
  // Paper §5: Assertion's improvement is "much less pronounced" away from
  // cliques, because the origin is not directly connected to everyone.
  const auto internet_std = run(TopologyKind::kInternet, 29, EventKind::kTdown,
                                bgp::Enhancement::kStandard);
  const auto internet_asrt = run(TopologyKind::kInternet, 29,
                                 EventKind::kTdown,
                                 bgp::Enhancement::kAssertion);
  // Still an improvement...
  EXPECT_LE(internet_asrt.ttl_exhaustions, internet_std.ttl_exhaustions);
  // ...but not the near-zero convergence seen in cliques.
  EXPECT_GT(internet_asrt.convergence_time_s, 2.0);
}

}  // namespace
}  // namespace bgpsim::core
