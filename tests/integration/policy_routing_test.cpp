// End-to-end Gao-Rexford policy routing over generated Internet topologies.
#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "bgp/policy.hpp"
#include "core/experiment.hpp"
#include "topo/internet.hpp"

namespace bgpsim {
namespace {

constexpr net::Prefix kP = 0;

TEST(PolicyRouting, GeneratorAnnotatesEveryLink) {
  topo::InternetParams params;
  params.nodes = 48;
  params.seed = 3;
  const auto ann = topo::make_internet_annotated(params);
  for (net::LinkId l = 0; l < ann.topology.link_count(); ++l) {
    const auto& link = ann.topology.link(l);
    EXPECT_TRUE(ann.relationships.relationship(link.a, link.b).has_value())
        << "link " << link.a << "-" << link.b;
  }
}

TEST(PolicyRouting, ProviderCustomerDigraphIsAcyclic) {
  // Providers always have smaller generator ids except inside stub chains,
  // where earlier stubs provide for later ones — still strictly ordered.
  topo::InternetParams params;
  params.nodes = 110;
  params.seed = 7;
  const auto ann = topo::make_internet_annotated(params);
  for (net::LinkId l = 0; l < ann.topology.link_count(); ++l) {
    const auto& link = ann.topology.link(l);
    const auto rel = ann.relationships.relationship(link.a, link.b);
    ASSERT_TRUE(rel.has_value());
    if (*rel == net::Relationship::kCustomer) {
      // link.b is link.a's customer: provider id must be smaller.
      EXPECT_LT(link.a, link.b);
    } else if (*rel == net::Relationship::kProvider) {
      EXPECT_GT(link.a, link.b);
    }
  }
}

TEST(PolicyRouting, ConvergedPathsAreValleyFree) {
  topo::InternetParams params;
  params.nodes = 48;
  params.seed = 5;
  auto ann = topo::make_internet_annotated(params);

  sim::Simulator simulator;
  bgp::BgpConfig config;
  config.policy = &ann.relationships;
  bgp::BgpNetwork network{simulator, ann.topology, config,
                          net::ProcessingDelay{sim::SimTime::millis(1),
                                               sim::SimTime::millis(1)},
                          sim::Rng{5}};
  // Destination: a stub (highest ids are stubs).
  const net::NodeId dest =
      static_cast<net::NodeId>(ann.topology.node_count() - 1);
  simulator.schedule_at(sim::SimTime::zero(),
                        [&] { network.originate(dest, kP); });
  simulator.run();
  ASSERT_FALSE(network.busy());

  std::size_t reached = 0;
  for (net::NodeId v = 0; v < ann.topology.node_count(); ++v) {
    if (v == dest) continue;
    const bgp::AsPath* loc = network.speaker(v).loc_rib().get(kP);
    if (!loc) continue;  // no-valley export can legitimately hide routes
    ++reached;
    EXPECT_TRUE(bgp::valley_free(ann.relationships, *loc))
        << "node " << v << " path " << loc->to_string();
  }
  // A stub's prefix must still reach the overwhelming majority of the
  // network (providers re-export customer routes everywhere).
  EXPECT_GT(reached, ann.topology.node_count() * 3 / 4);
}

TEST(PolicyRouting, PolicyPathsCanBeLongerThanShortest) {
  // Policy routing trades path length for business preference; verify the
  // engine actually expresses that (at least one node picks a non-shortest
  // route), using the same graph under both policies.
  topo::InternetParams params;
  params.nodes = 48;
  params.seed = 5;
  auto ann = topo::make_internet_annotated(params);
  const net::NodeId dest =
      static_cast<net::NodeId>(ann.topology.node_count() - 1);

  const auto run_once = [&](const net::RelationshipTable* policy) {
    sim::Simulator simulator;
    bgp::BgpConfig config;
    config.policy = policy;
    bgp::BgpNetwork network{simulator, ann.topology, config,
                            net::ProcessingDelay{sim::SimTime::millis(1),
                                                 sim::SimTime::millis(1)},
                            sim::Rng{5}};
    simulator.schedule_at(sim::SimTime::zero(),
                          [&] { network.originate(dest, kP); });
    simulator.run();
    std::vector<std::size_t> lengths(ann.topology.node_count(), 0);
    for (net::NodeId v = 0; v < ann.topology.node_count(); ++v) {
      const bgp::AsPath* loc = network.speaker(v).loc_rib().get(kP);
      lengths[v] = loc ? loc->length() : 0;
    }
    return lengths;
  };

  const auto policy_lengths = run_once(&ann.relationships);
  const auto shortest_lengths = run_once(nullptr);
  bool some_longer = false;
  for (std::size_t v = 0; v < policy_lengths.size(); ++v) {
    if (policy_lengths[v] != 0) {
      EXPECT_GE(policy_lengths[v], shortest_lengths[v]) << "node " << v;
      if (policy_lengths[v] > shortest_lengths[v]) some_longer = true;
    }
  }
  EXPECT_TRUE(some_longer);
}

TEST(PolicyRouting, ExperimentDriverSupportsPolicy) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kInternet;
  s.topology.size = 29;
  s.topology.topo_seed = 3;
  s.event = core::EventKind::kTdown;
  s.policy_routing = true;
  s.seed = 3;
  const auto out = core::run_experiment(s);
  EXPECT_GT(out.metrics.convergence_time_s, 0.0);
  EXPECT_NE(s.label().find("(policy)"), std::string::npos);
}

TEST(PolicyRouting, TransientLoopsStillFormUnderPolicy) {
  // The paper's core claim is policy-independent: inconsistency during
  // convergence causes loops. Policy routing restricts the candidate set
  // (fewer obsolete backups to pick), so loops are rarer — but they do not
  // disappear. Scan a handful of seeds and require at least one looping
  // convergence.
  std::uint64_t total_loops = 0;
  for (std::uint64_t seed = 1; seed <= 8 && total_loops == 0; ++seed) {
    core::Scenario s;
    s.topology.kind = core::TopologyKind::kInternet;
    s.topology.size = 48;
    s.topology.topo_seed = seed;
    s.event = core::EventKind::kTdown;
    s.policy_routing = true;
    s.seed = seed;
    total_loops += core::run_experiment(s).metrics.loops_formed;
  }
  EXPECT_GT(total_loops, 0u);
}

TEST(PolicyRouting, RejectsNonInternetTopologies) {
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 6;
  s.policy_routing = true;
  EXPECT_THROW(core::run_experiment(s), std::invalid_argument);
}

}  // namespace
}  // namespace bgpsim
