// Robustness under repeated and overlapping failures (link flapping).
#include <gtest/gtest.h>

#include "bgp/network.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"

namespace bgpsim::bgp {
namespace {

constexpr net::Prefix kP = 0;

class FlapTest : public ::testing::Test {
 protected:
  FlapTest()
      : topo_{topo::make_bclique(4)},  // 8 nodes
        network_{sim_, topo_, config(), net::ProcessingDelay{
                                            sim::SimTime::millis(100),
                                            sim::SimTime::millis(500)},
                 sim::Rng{3}},
        detector_{topo_.node_count()} {
    detector_.attach(sim_, network_.fibs(), kP);
    direct_ = topo::bclique_tlong_link(topo_, 4);
  }

  static BgpConfig config() {
    BgpConfig c;
    c.mrai = sim::SimTime::seconds(30);
    return c;
  }

  void converge() {
    sim_.schedule_at(sim::SimTime::zero(), [&] { network_.originate(0, kP); });
    sim_.run();
    ASSERT_FALSE(network_.busy());
  }

  void drain() {
    sim_.run();
    ASSERT_FALSE(network_.busy());
    ASSERT_EQ(network_.control_messages_in_flight(), 0u);
  }

  void expect_shortest_paths() {
    const auto dist = topo_.bfs_distances(0);
    for (net::NodeId v = 1; v < topo_.node_count(); ++v) {
      const AsPath* loc = network_.speaker(v).loc_rib().get(kP);
      ASSERT_NE(loc, nullptr) << "node " << v;
      EXPECT_EQ(loc->length(), dist[v] + 1) << "node " << v;
    }
  }

  sim::Simulator sim_;
  net::Topology topo_;
  BgpNetwork network_;
  metrics::LoopDetector detector_;
  net::LinkId direct_ = 0;
};

TEST_F(FlapTest, RepeatedFailRestoreCyclesReconverge) {
  converge();
  for (int cycle = 0; cycle < 3; ++cycle) {
    sim_.schedule_at(sim_.now() + sim::SimTime::seconds(60),
                     [&] { network_.inject_link_failure(direct_); });
    drain();
    expect_shortest_paths();  // longer paths via the chain

    sim_.schedule_at(sim_.now() + sim::SimTime::seconds(60),
                     [&] { network_.transport().restore_link(direct_); });
    drain();
    expect_shortest_paths();  // back to the direct attachment
  }
  detector_.finalize(sim_.now());
  EXPECT_EQ(detector_.active_count(), 0u);
}

TEST_F(FlapTest, FailureDuringConvergenceIsHandled) {
  converge();
  // Fail the direct link, and while the network is still reconverging,
  // fail a chain link too (then restore it).
  const auto chain_link = *topo_.link_between(1, 2);
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(10),
                   [&] { network_.inject_link_failure(direct_); });
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(12), [&] {
    network_.inject_link_failure(chain_link);
  });
  // With both down the graph is disconnected: 1..3 unreachable side.
  drain();
  // Restore the chain link; everyone reconverges.
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(60), [&] {
    network_.transport().restore_link(chain_link);
  });
  drain();
  expect_shortest_paths();
}

TEST_F(FlapTest, RapidFlapWithInFlightMessages) {
  converge();
  // Fail and restore within 50 ms — faster than any processing delay, so
  // session-down and session-up notices queue back to back.
  for (int i = 0; i < 5; ++i) {
    const auto base = sim_.now() + sim::SimTime::seconds(10);
    sim_.schedule_at(base, [&] { network_.inject_link_failure(direct_); });
    sim_.schedule_at(base + sim::SimTime::millis(50),
                     [&] { network_.transport().restore_link(direct_); });
    drain();
    expect_shortest_paths();
  }
}

TEST_F(FlapTest, NodeFailureIsolatesAndRecovers) {
  converge();
  // Take down every link of clique node 5 (a transit for nobody critical).
  sim_.schedule_at(sim_.now() + sim::SimTime::seconds(10),
                   [&] { network_.transport().fail_node(5); });
  drain();
  // 5 is isolated: no route. Everyone else still converges correctly.
  EXPECT_EQ(network_.speaker(5).loc_rib().get(kP), nullptr);
  const auto dist = topo_.bfs_distances(0);
  for (net::NodeId v = 1; v < topo_.node_count(); ++v) {
    if (v == 5) continue;
    const AsPath* loc = network_.speaker(v).loc_rib().get(kP);
    ASSERT_NE(loc, nullptr) << "node " << v;
    EXPECT_EQ(loc->length(), dist[v] + 1) << "node " << v;
  }
  // Bring the node back.
  for (net::LinkId l : topo_.links_of(5)) {
    sim_.schedule_at(sim_.now() + sim::SimTime::seconds(30),
                     [&, l] { network_.transport().restore_link(l); });
  }
  drain();
  expect_shortest_paths();
}

TEST_F(FlapTest, SimultaneousDualFailure) {
  converge();
  const auto chain_link = *topo_.link_between(2, 3);
  const auto when = sim_.now() + sim::SimTime::seconds(10);
  sim_.schedule_at(when, [&] { network_.inject_link_failure(direct_); });
  sim_.schedule_at(when, [&] { network_.inject_link_failure(chain_link); });
  drain();
  // Nodes 1, 2 can still reach 0 (via the chain head); 3.. cannot... check
  // against BFS ground truth rather than hand-derived expectations.
  const auto dist = topo_.bfs_distances(0);
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  for (net::NodeId v = 1; v < topo_.node_count(); ++v) {
    const AsPath* loc = network_.speaker(v).loc_rib().get(kP);
    if (dist[v] == kUnreached) {
      EXPECT_EQ(loc, nullptr) << "node " << v;
    } else {
      ASSERT_NE(loc, nullptr) << "node " << v;
      EXPECT_EQ(loc->length(), dist[v] + 1) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace bgpsim::bgp
