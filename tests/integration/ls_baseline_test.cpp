// End-to-end link-state baseline: flooding convergence, micro-loops, and
// the contrast with BGP's MRAI-long loops (paper §2: Hengartner et al. /
// Sridharan et al. context).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/ls_experiment.hpp"
#include "ls/network.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"

namespace bgpsim {
namespace {

constexpr net::Prefix kP = 0;

ls::LsConfig quick_ls() {
  ls::LsConfig c;
  c.spf_delay_lo = sim::SimTime::millis(100);
  c.spf_delay_hi = sim::SimTime::millis(100);
  return c;
}

TEST(LsNetwork, ColdStartConvergesToShortestPaths) {
  sim::Simulator sim;
  auto topo = topo::make_bclique(4);
  ls::LsNetwork network{sim, topo, quick_ls(),
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  sim.schedule_at(sim::SimTime::zero(), [&] {
    network.start_all();
    network.originate(0, kP);
  });
  sim.run();
  ASSERT_FALSE(network.busy());
  const auto dist = topo.bfs_distances(0);
  for (net::NodeId v = 1; v < topo.node_count(); ++v) {
    const auto nh = network.fibs()[v].next_hop(kP);
    ASSERT_TRUE(nh.has_value()) << "node " << v;
    // The next hop lies on a shortest path.
    EXPECT_EQ(dist[*nh] + 1, dist[v]) << "node " << v;
  }
}

TEST(LsNetwork, LinkFailureReconvergesQuickly) {
  sim::Simulator sim;
  auto topo = topo::make_bclique(4);
  ls::LsNetwork network{sim, topo, quick_ls(),
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  sim.schedule_at(sim::SimTime::zero(), [&] {
    network.start_all();
    network.originate(0, kP);
  });
  sim.run();
  const auto t0 = sim.now();
  const auto failed = topo::bclique_tlong_link(topo, 4);
  sim.schedule_at(t0 + sim::SimTime::seconds(5),
                  [&] { network.inject_link_failure(failed); });
  sim.run();
  ASSERT_FALSE(network.busy());
  // Reconvergence completes within flooding + SPF time (well under 1 s),
  // not MRAI rounds.
  EXPECT_LT((sim.now() - (t0 + sim::SimTime::seconds(5))).as_seconds(), 2.0);
  const auto dist = topo.bfs_distances(0);
  for (net::NodeId v = 1; v < topo.node_count(); ++v) {
    const auto nh = network.fibs()[v].next_hop(kP);
    ASSERT_TRUE(nh.has_value()) << "node " << v;
    EXPECT_EQ(dist[*nh] + 1, dist[v]) << "node " << v;
  }
}

TEST(LsNetwork, TdownWithdrawsEverywhere) {
  sim::Simulator sim;
  auto topo = topo::make_ring(6);
  ls::LsNetwork network{sim, topo, quick_ls(),
                        net::ProcessingDelay{sim::SimTime::millis(1),
                                             sim::SimTime::millis(1)},
                        sim::Rng{3}};
  sim.schedule_at(sim::SimTime::zero(), [&] {
    network.start_all();
    network.originate(0, kP);
  });
  sim.run();
  sim.schedule_at(sim.now() + sim::SimTime::seconds(5),
                  [&] { network.inject_tdown(0, kP); });
  sim.run();
  for (net::NodeId v = 0; v < topo.node_count(); ++v) {
    EXPECT_FALSE(network.fibs()[v].next_hop(kP).has_value()) << "node " << v;
  }
}

TEST(LsExperiment, DriverRunsTlong) {
  core::LsScenario s;
  s.topology.kind = core::TopologyKind::kBClique;
  s.topology.size = 6;
  s.event = core::EventKind::kTlong;
  s.seed = 3;
  const auto out = core::run_ls_experiment(s);
  EXPECT_GT(out.metrics.updates_sent, 0u);
  // The whole reconvergence (last LSA) is sub-second.
  EXPECT_LT(out.metrics.convergence_time_s, 2.0);
  EXPECT_GT(out.metrics.packets_delivered, 0u);
}

TEST(LsExperiment, MicroLoopsAreShortLivedComparedToBgp) {
  // Same B-Clique Tlong event under both protocols. Link-state loops (if
  // any form at all) last at most flooding + SPF delay; BGP's last for
  // MRAI rounds.
  double ls_max_loop = 0;
  bool ls_any = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::LsScenario s;
    s.topology.kind = core::TopologyKind::kBClique;
    s.topology.size = 8;
    s.event = core::EventKind::kTlong;
    s.seed = seed;
    const auto out = core::run_ls_experiment(s);
    if (out.metrics.loops_formed > 0) ls_any = true;
    ls_max_loop = std::max(ls_max_loop, out.metrics.max_loop_duration_s);
  }

  core::Scenario bgp_s;
  bgp_s.topology.kind = core::TopologyKind::kBClique;
  bgp_s.topology.size = 8;
  bgp_s.event = core::EventKind::kTlong;
  bgp_s.seed = 1;
  const auto bgp_out = core::run_experiment(bgp_s);

  // LS micro-loops, when they occur, are bounded by ~SPF+flooding time.
  EXPECT_LT(ls_max_loop, 1.0);
  // BGP's loops last orders of magnitude longer on the same event.
  ASSERT_GT(bgp_out.metrics.loops_formed, 0u);
  EXPECT_GT(bgp_out.metrics.max_loop_duration_s, 5.0);
  // (Whether ls_any is true is topology/timing dependent; both outcomes
  // are consistent with Hengartner's "forwarding loops were rare".)
  (void)ls_any;
}

TEST(LsExperiment, FateConservation) {
  core::LsScenario s;
  s.topology.kind = core::TopologyKind::kRing;
  s.topology.size = 8;
  s.event = core::EventKind::kTlong;
  s.seed = 4;
  const auto out = core::run_ls_experiment(s);
  EXPECT_EQ(out.metrics.packets_sent_total,
            out.metrics.packets_delivered + out.metrics.ttl_exhaustions +
                out.metrics.packets_no_route + out.metrics.packets_link_down);
}

}  // namespace
}  // namespace bgpsim
