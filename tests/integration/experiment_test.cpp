// End-to-end tests of the experiment driver (core::run_experiment).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

namespace bgpsim::core {
namespace {

Scenario small_clique_tdown() {
  Scenario s;
  s.topology.kind = TopologyKind::kClique;
  s.topology.size = 6;
  s.event = EventKind::kTdown;
  s.seed = 1;
  return s;
}

TEST(Experiment, CliqueTdownProducesLooping) {
  const auto out = run_experiment(small_clique_tdown());
  const auto& m = out.metrics;
  EXPECT_GT(m.convergence_time_s, 10.0);
  EXPECT_GT(m.ttl_exhaustions, 0u);
  EXPECT_GT(m.looping_ratio, 0.1);
  EXPECT_GT(m.loops_formed, 0u);
  // The paper's core observation: looping spans most of convergence.
  EXPECT_GT(m.looping_duration_s, 0.5 * m.convergence_time_s);
  EXPECT_LE(m.looping_duration_s, m.convergence_time_s + 1.0);
}

TEST(Experiment, MetricsInternallyConsistent) {
  const auto out = run_experiment(small_clique_tdown());
  const auto& m = out.metrics;
  EXPECT_LE(m.ttl_exhaustions,
            m.packets_sent_total);
  EXPECT_LE(m.packets_sent_during_convergence, m.packets_sent_total);
  // Every injected packet has exactly one fate.
  EXPECT_EQ(m.packets_sent_total,
            m.packets_delivered + m.ttl_exhaustions + m.packets_no_route +
                m.packets_link_down);
  EXPECT_GE(m.last_update_at, m.event_at);
  if (m.ttl_exhaustions > 0) {
    EXPECT_GE(m.first_exhaustion_at, m.event_at);
    EXPECT_GE(m.last_exhaustion_at, m.first_exhaustion_at);
  }
}

TEST(Experiment, LoopingRatioMatchesDefinition) {
  const auto out = run_experiment(small_clique_tdown());
  const auto& m = out.metrics;
  ASSERT_GT(m.packets_sent_during_convergence, 0u);
  EXPECT_DOUBLE_EQ(m.looping_ratio,
                   static_cast<double>(m.ttl_exhaustions) /
                       static_cast<double>(m.packets_sent_during_convergence));
}

TEST(Experiment, TlongKeepsDestinationReachable) {
  Scenario s;
  s.topology.kind = TopologyKind::kBClique;
  s.topology.size = 6;
  s.event = EventKind::kTlong;
  s.seed = 2;
  const auto out = run_experiment(s);
  ASSERT_TRUE(out.failed_link.has_value());
  EXPECT_GT(out.metrics.convergence_time_s, 1.0);
  // Traffic keeps flowing after reconvergence: deliveries exist.
  EXPECT_GT(out.metrics.packets_delivered, 0u);
}

TEST(Experiment, TupAnnouncementDoesNotLoop) {
  Scenario s = small_clique_tdown();
  s.event = EventKind::kTup;
  const auto out = run_experiment(s);
  // Announcing into a quiet network: convergence happens (updates spread)
  // but there is no obsolete state to loop on.
  EXPECT_GT(out.metrics.convergence_time_s, 0.0);
  EXPECT_EQ(out.metrics.loops_formed, 0u);
  EXPECT_EQ(out.metrics.ttl_exhaustions, 0u);
  // Traffic that started before the event black-holes, then delivers.
  EXPECT_GT(out.metrics.packets_no_route, 0u);
  EXPECT_GT(out.metrics.packets_delivered, 0u);
}

TEST(Experiment, TdownHasNoFailedLink) {
  const auto out = run_experiment(small_clique_tdown());
  EXPECT_FALSE(out.failed_link.has_value());
  EXPECT_EQ(out.destination, 0u);
}

TEST(Experiment, InternetDestinationHasLowestDegree) {
  Scenario s;
  s.topology.kind = TopologyKind::kInternet;
  s.topology.size = 29;
  s.topology.topo_seed = 5;
  s.event = EventKind::kTdown;
  s.seed = 5;
  const auto out = run_experiment(s);
  const auto topo = s.topology.build();
  std::size_t min_degree = topo.node_count();
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    min_degree = std::min(min_degree, topo.degree(n));
  }
  EXPECT_EQ(topo.degree(out.destination), min_degree);
}

TEST(Experiment, ExplicitDestinationHonored) {
  Scenario s = small_clique_tdown();
  s.destination = 3;
  const auto out = run_experiment(s);
  EXPECT_EQ(out.destination, 3u);
}

TEST(Experiment, ExplicitTlongLinkHonored) {
  Scenario s;
  s.topology.kind = TopologyKind::kBClique;
  s.topology.size = 4;
  s.event = EventKind::kTlong;
  s.tlong_link = 1;  // a chain link; keeps graph connected
  const auto out = run_experiment(s);
  EXPECT_EQ(out.failed_link, 1u);
}

TEST(Experiment, InvalidSettleMarginThrows) {
  Scenario s = small_clique_tdown();
  s.settle_margin = sim::SimTime::seconds(1);
  s.traffic_lead = sim::SimTime::seconds(2);
  EXPECT_THROW(run_experiment(s), std::invalid_argument);
}

TEST(Experiment, ZeroMraiStillConverges) {
  Scenario s = small_clique_tdown();
  s.bgp.mrai = sim::SimTime::zero();
  const auto out = run_experiment(s);
  // Without MRAI delays, convergence is driven by processing delays only
  // and is dramatically faster.
  EXPECT_LT(out.metrics.convergence_time_s, 30.0);
}

TEST(Sweep, TrialsVarySeedsAndAggregate) {
  const TrialSet set =
      run_trials(small_clique_tdown(), RunOptions{.trials = 3, .jobs = 1});
  ASSERT_EQ(set.runs.size(), 3u);
  EXPECT_EQ(set.convergence_time_s.n, 3u);
  EXPECT_GT(set.convergence_time_s.mean, 0.0);
  // Jitter should make trials differ.
  EXPECT_GT(set.convergence_time_s.stddev, 0.0);
}

TEST(Sweep, EnvOverrideParses) {
  ::setenv("BGPSIM_TEST_ENV_KNOB", "17", 1);
  EXPECT_EQ(env_or("BGPSIM_TEST_ENV_KNOB", 3), 17u);
  ::setenv("BGPSIM_TEST_ENV_KNOB", "junk", 1);
  EXPECT_EQ(env_or("BGPSIM_TEST_ENV_KNOB", 3), 3u);
  ::unsetenv("BGPSIM_TEST_ENV_KNOB");
  EXPECT_EQ(env_or("BGPSIM_TEST_ENV_KNOB", 3), 3u);
}

}  // namespace
}  // namespace bgpsim::core
