#include "fwd/fib.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bgpsim::fwd {
namespace {

TEST(Fib, EmptyHasNoRoute) {
  Fib fib;
  EXPECT_FALSE(fib.next_hop(0).has_value());
  EXPECT_EQ(fib.route_count(), 0u);
}

TEST(Fib, SetAndGet) {
  Fib fib;
  EXPECT_TRUE(fib.set_next_hop(0, 5));
  EXPECT_EQ(fib.next_hop(0), 5u);
  EXPECT_EQ(fib.route_count(), 1u);
}

TEST(Fib, SetSameValueReportsNoChange) {
  Fib fib;
  fib.set_next_hop(0, 5);
  EXPECT_FALSE(fib.set_next_hop(0, 5));
  EXPECT_TRUE(fib.set_next_hop(0, 6));
  EXPECT_EQ(fib.next_hop(0), 6u);
}

TEST(Fib, ClearRoute) {
  Fib fib;
  fib.set_next_hop(0, 5);
  EXPECT_TRUE(fib.clear_route(0));
  EXPECT_FALSE(fib.next_hop(0).has_value());
  EXPECT_FALSE(fib.clear_route(0));  // already gone
}

TEST(Fib, PrefixesAreIndependent) {
  Fib fib;
  fib.set_next_hop(0, 5);
  fib.set_next_hop(1, 7);
  EXPECT_EQ(fib.next_hop(0), 5u);
  EXPECT_EQ(fib.next_hop(1), 7u);
  fib.clear_route(0);
  EXPECT_EQ(fib.next_hop(1), 7u);
}

struct Change {
  net::Prefix prefix;
  std::optional<net::NodeId> previous;
  std::optional<net::NodeId> current;
};

TEST(Fib, ObserverSeesTransitions) {
  Fib fib;
  std::vector<Change> changes;
  fib.set_observer([&](net::Prefix p, std::optional<net::NodeId> prev,
                       std::optional<net::NodeId> now) {
    changes.push_back(Change{p, prev, now});
  });

  fib.set_next_hop(0, 5);   // install
  fib.set_next_hop(0, 5);   // no-op: no callback
  fib.set_next_hop(0, 6);   // replace
  fib.clear_route(0);       // remove

  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].previous, std::nullopt);
  EXPECT_EQ(changes[0].current, 5u);
  EXPECT_EQ(changes[1].previous, 5u);
  EXPECT_EQ(changes[1].current, 6u);
  EXPECT_EQ(changes[2].previous, 6u);
  EXPECT_EQ(changes[2].current, std::nullopt);
}

}  // namespace
}  // namespace bgpsim::fwd
