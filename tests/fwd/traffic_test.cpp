#include "fwd/traffic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fwd/engine.hpp"
#include "topo/generators.hpp"

namespace bgpsim::fwd {
namespace {

constexpr net::Prefix kPrefix = 0;

class TrafficTest : public ::testing::Test {
 protected:
  TrafficTest()
      : topo_{topo::make_chain(3)},
        fibs_(topo_.node_count()),
        plane_{sim_, topo_, fibs_, DataPlaneOptions::single(0)} {
    for (net::NodeId n = 1; n < topo_.node_count(); ++n) {
      fibs_[n].set_next_hop(kPrefix, n - 1);
    }
  }

  TrafficGenerator make(TrafficConfig cfg) {
    return TrafficGenerator{sim_, plane_, cfg, sim::Rng{11}};
  }

  sim::Simulator sim_;
  net::Topology topo_;
  std::vector<Fib> fibs_;
  DataPlane plane_;
};

TEST_F(TrafficTest, ConstantRatePerSource) {
  TrafficConfig cfg;
  cfg.interval = sim::SimTime::millis(100);
  cfg.stagger = false;
  auto gen = make(cfg);
  gen.start({1, 2}, sim::SimTime::zero());
  sim_.schedule_at(sim::SimTime::millis(950), [&] { gen.stop(); });
  sim_.run();
  // Each source fires at 0,100,...,900 = 10 times.
  EXPECT_EQ(gen.packets_sent(), 20u);
  EXPECT_EQ(plane_.counters().injected, 20u);
}

TEST_F(TrafficTest, StaggerOffsetsWithinOneInterval) {
  TrafficConfig cfg;
  cfg.interval = sim::SimTime::millis(100);
  cfg.stagger = true;
  auto gen = make(cfg);
  std::vector<sim::SimTime> first_sends;
  gen.set_send_hook([&](net::NodeId, net::Prefix, sim::SimTime when) {
    first_sends.push_back(when);
  });
  gen.start({1, 2}, sim::SimTime::millis(500));
  sim_.schedule_at(sim::SimTime::millis(599), [&] { gen.stop(); });
  sim_.run_until(sim::SimTime::millis(700));
  ASSERT_EQ(first_sends.size(), 2u);
  for (const auto t : first_sends) {
    EXPECT_GE(t, sim::SimTime::millis(500));
    EXPECT_LT(t, sim::SimTime::millis(600));
  }
}

TEST_F(TrafficTest, SendHookSeesEveryInjection) {
  TrafficConfig cfg;
  cfg.interval = sim::SimTime::millis(100);
  cfg.stagger = false;
  auto gen = make(cfg);
  std::map<net::NodeId, int> per_source;
  std::map<net::Prefix, int> per_prefix;
  gen.set_send_hook([&](net::NodeId src, net::Prefix prefix, sim::SimTime) {
    ++per_source[src];
    ++per_prefix[prefix];
  });
  gen.start({1, 2}, sim::SimTime::zero());
  sim_.schedule_at(sim::SimTime::millis(250), [&] { gen.stop(); });
  sim_.run();
  EXPECT_EQ(per_source[1], 3);  // t = 0, 100, 200
  EXPECT_EQ(per_source[2], 3);
  // Single-prefix planes report prefix 0 on every send.
  EXPECT_EQ(per_prefix[kPrefix], 6);
}

TEST_F(TrafficTest, StopPreventsFurtherInjections) {
  TrafficConfig cfg;
  cfg.interval = sim::SimTime::millis(100);
  cfg.stagger = false;
  auto gen = make(cfg);
  gen.start({1}, sim::SimTime::zero());
  EXPECT_TRUE(gen.running());
  sim_.schedule_at(sim::SimTime::millis(150), [&] { gen.stop(); });
  sim_.run();
  EXPECT_FALSE(gen.running());
  EXPECT_EQ(gen.packets_sent(), 2u);  // t = 0 and 100 only
}

TEST_F(TrafficTest, CustomTtlPropagates) {
  TrafficConfig cfg;
  cfg.interval = sim::SimTime::millis(100);
  cfg.stagger = false;
  cfg.ttl = 1;
  auto gen = make(cfg);
  gen.start({2}, sim::SimTime::zero());
  sim_.schedule_at(sim::SimTime::millis(50), [&] { gen.stop(); });
  sim_.run();
  // TTL 1: the packet dies on its first forwarding attempt.
  EXPECT_EQ(plane_.counters().ttl_exhausted, 1u);
}

}  // namespace
}  // namespace bgpsim::fwd
