#include "fwd/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topo/generators.hpp"

namespace bgpsim::fwd {
namespace {

constexpr net::Prefix kPrefix = 0;

struct Fate {
  std::uint64_t id;
  PacketFate fate;
  net::NodeId where;
  sim::SimTime when;
  int hops;
};

/// Flattens batched fate deliveries back into one record per packet so the
/// assertions below stay order-sensitive across backends.
class FateRecorder final : public FateSink {
 public:
  void on_fates(std::span<const FateRecord> batch) override {
    for (const FateRecord& r : batch) {
      fates.push_back(
          Fate{r.packet.id, r.fate, r.where, r.when, r.packet.hops_taken});
    }
  }
  std::vector<Fate> fates;
};

/// Every test runs under both hop-store backends (heap and per-tick
/// rings); the fixture pins the backend explicitly so the suite is
/// independent of BGPSIM_DATAPLANE_RINGS.
class DataPlaneTest : public ::testing::TestWithParam<PlaneBackend> {
 protected:
  explicit DataPlaneTest(net::Topology topo = topo::make_chain(4))
      : topo_{std::move(topo)},
        fibs_(topo_.node_count()),
        plane_{sim_, topo_, fibs_, [] {
          DataPlaneOptions options = DataPlaneOptions::single(0);
          options.backend = GetParam();
          return options;
        }()} {
    plane_.set_fate_sink(&recorder_);
  }

  /// Point every node's next hop down the chain toward node 0.
  void install_chain_routes() {
    for (net::NodeId n = 1; n < topo_.node_count(); ++n) {
      fibs_[n].set_next_hop(kPrefix, n - 1);
    }
  }

  [[nodiscard]] std::vector<Fate>& fates_() { return recorder_.fates; }

  sim::Simulator sim_;
  net::Topology topo_;
  std::vector<Fib> fibs_;
  DataPlane plane_;
  FateRecorder recorder_;
};

TEST_P(DataPlaneTest, UsesRequestedBackend) {
  EXPECT_EQ(plane_.backend(), GetParam());
}

TEST_P(DataPlaneTest, DeliversAlongChain) {
  install_chain_routes();
  plane_.inject(Injection{.source = 3});
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kDelivered);
  EXPECT_EQ(fates_()[0].where, 0u);
  EXPECT_EQ(fates_()[0].hops, 3);
  // 3 hops at 2 ms each.
  EXPECT_EQ(fates_()[0].when, sim::SimTime::millis(6));
}

TEST_P(DataPlaneTest, InjectionAtDestinationDeliversInstantly) {
  plane_.inject(Injection{.source = 0});
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kDelivered);
  EXPECT_EQ(fates_()[0].hops, 0);
  EXPECT_EQ(fates_()[0].when, sim::SimTime::zero());
}

TEST_P(DataPlaneTest, NoRouteDropsAtOrigin) {
  plane_.inject(Injection{.source = 2});  // no FIB entries installed
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kNoRoute);
  EXPECT_EQ(fates_()[0].where, 2u);
}

TEST_P(DataPlaneTest, NoRouteDropsMidPath) {
  fibs_[3].set_next_hop(kPrefix, 2);
  fibs_[2].set_next_hop(kPrefix, 1);
  // node 1 has no route.
  plane_.inject(Injection{.source = 3});
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kNoRoute);
  EXPECT_EQ(fates_()[0].where, 1u);
}

TEST_P(DataPlaneTest, LinkDownDrop) {
  install_chain_routes();
  topo_.set_link_state(*topo_.link_between(1, 0), false);
  plane_.inject(Injection{.source = 3});
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kLinkDown);
  EXPECT_EQ(fates_()[0].where, 1u);
}

TEST_P(DataPlaneTest, TtlExhaustionInLoop) {
  // 2-node loop between 2 and 3.
  fibs_[3].set_next_hop(kPrefix, 2);
  fibs_[2].set_next_hop(kPrefix, 3);
  plane_.inject(Injection{.source = 3, .ttl = 10});
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kTtlExhausted);
  // 10 TTL decrements happen on the 10th forwarding attempt; the packet
  // dies at the node attempting the 10th hop after 9 completed hops.
  EXPECT_EQ(fates_()[0].hops, 9);
  EXPECT_EQ(fates_()[0].when, sim::SimTime::millis(18));
}

TEST_P(DataPlaneTest, DefaultTtlGives256msLifetime) {
  fibs_[3].set_next_hop(kPrefix, 2);
  fibs_[2].set_next_hop(kPrefix, 3);
  plane_.inject(Injection{.source = 3});  // TTL 128
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kTtlExhausted);
  // 127 full hops, dies attempting the 128th: t = 127 * 2 ms.
  EXPECT_EQ(fates_()[0].when, sim::SimTime::millis(254));
}

TEST_P(DataPlaneTest, FibChangeMidFlightRedirectsPacket) {
  install_chain_routes();
  // Point node 2 into a loop with 3 initially.
  fibs_[2].set_next_hop(kPrefix, 3);
  fibs_[3].set_next_hop(kPrefix, 2);
  plane_.inject(Injection{.source = 3, .ttl = 100});
  // After 5 ms (packet bouncing), heal node 2's route.
  sim_.schedule_at(sim::SimTime::millis(5),
                   [&] { fibs_[2].set_next_hop(kPrefix, 1); });
  sim_.run();
  ASSERT_EQ(fates_().size(), 1u);
  EXPECT_EQ(fates_()[0].fate, PacketFate::kDelivered);
}

TEST_P(DataPlaneTest, CountersAggregate) {
  install_chain_routes();
  plane_.inject(Injection{.source = 3});  // in flight toward 2 when the
                                          // route there vanishes
  plane_.inject(Injection{.source = 1});  // one hop: delivered before any
                                          // change matters
  fibs_[2].clear_route(kPrefix);
  plane_.inject(Injection{.source = 3});  // also dies at 2
  sim_.run();
  const auto& c = plane_.counters();
  EXPECT_EQ(c.injected, 3u);
  EXPECT_EQ(c.delivered, 1u);
  EXPECT_EQ(c.no_route, 2u);
  EXPECT_EQ(plane_.in_flight(), 0u);
}

TEST_P(DataPlaneTest, ManyConcurrentPacketsAllTerminate) {
  install_chain_routes();
  for (int i = 0; i < 500; ++i) {
    plane_.inject(Injection{.source = 3});
    plane_.inject(Injection{.source = 2});
  }
  sim_.run();
  EXPECT_EQ(fates_().size(), 1000u);
  EXPECT_EQ(plane_.counters().delivered, 1000u);
  EXPECT_EQ(plane_.in_flight(), 0u);
}

TEST_P(DataPlaneTest, PacketIdsAreUnique) {
  install_chain_routes();
  const auto a = plane_.inject(Injection{.source = 1});
  const auto b = plane_.inject(Injection{.source = 2});
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DataPlaneTest,
    ::testing::Values(PlaneBackend::kHeap, PlaneBackend::kRings),
    [](const ::testing::TestParamInfo<PlaneBackend>& info) {
      return info.param == PlaneBackend::kHeap ? "heap" : "rings";
    });

}  // namespace
}  // namespace bgpsim::fwd
