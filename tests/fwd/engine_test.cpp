#include "fwd/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topo/generators.hpp"

namespace bgpsim::fwd {
namespace {

constexpr net::Prefix kPrefix = 0;

struct Fate {
  std::uint64_t id;
  PacketFate fate;
  net::NodeId where;
  sim::SimTime when;
  int hops;
};

class DataPlaneTest : public ::testing::Test {
 protected:
  explicit DataPlaneTest(net::Topology topo = topo::make_chain(4))
      : topo_{std::move(topo)},
        fibs_(topo_.node_count()),
        plane_{sim_, topo_, fibs_, /*destination=*/0, kPrefix} {
    plane_.set_fate_handler([this](const Packet& p, PacketFate f,
                                   net::NodeId where, sim::SimTime when) {
      fates_.push_back(Fate{p.id, f, where, when, p.hops_taken});
    });
  }

  /// Point every node's next hop down the chain toward node 0.
  void install_chain_routes() {
    for (net::NodeId n = 1; n < topo_.node_count(); ++n) {
      fibs_[n].set_next_hop(kPrefix, n - 1);
    }
  }

  sim::Simulator sim_;
  net::Topology topo_;
  std::vector<Fib> fibs_;
  DataPlane plane_;
  std::vector<Fate> fates_;
};

TEST_F(DataPlaneTest, DeliversAlongChain) {
  install_chain_routes();
  plane_.inject(3);
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kDelivered);
  EXPECT_EQ(fates_[0].where, 0u);
  EXPECT_EQ(fates_[0].hops, 3);
  // 3 hops at 2 ms each.
  EXPECT_EQ(fates_[0].when, sim::SimTime::millis(6));
}

TEST_F(DataPlaneTest, InjectionAtDestinationDeliversInstantly) {
  plane_.inject(0);
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kDelivered);
  EXPECT_EQ(fates_[0].hops, 0);
  EXPECT_EQ(fates_[0].when, sim::SimTime::zero());
}

TEST_F(DataPlaneTest, NoRouteDropsAtOrigin) {
  plane_.inject(2);  // no FIB entries installed
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kNoRoute);
  EXPECT_EQ(fates_[0].where, 2u);
}

TEST_F(DataPlaneTest, NoRouteDropsMidPath) {
  fibs_[3].set_next_hop(kPrefix, 2);
  fibs_[2].set_next_hop(kPrefix, 1);
  // node 1 has no route.
  plane_.inject(3);
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kNoRoute);
  EXPECT_EQ(fates_[0].where, 1u);
}

TEST_F(DataPlaneTest, LinkDownDrop) {
  install_chain_routes();
  topo_.set_link_state(*topo_.link_between(1, 0), false);
  plane_.inject(3);
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kLinkDown);
  EXPECT_EQ(fates_[0].where, 1u);
}

TEST_F(DataPlaneTest, TtlExhaustionInLoop) {
  // 2-node loop between 2 and 3.
  fibs_[3].set_next_hop(kPrefix, 2);
  fibs_[2].set_next_hop(kPrefix, 3);
  plane_.inject(3, /*ttl=*/10);
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kTtlExhausted);
  // 10 TTL decrements happen on the 10th forwarding attempt; the packet
  // dies at the node attempting the 10th hop after 9 completed hops.
  EXPECT_EQ(fates_[0].hops, 9);
  EXPECT_EQ(fates_[0].when, sim::SimTime::millis(18));
}

TEST_F(DataPlaneTest, DefaultTtlGives256msLifetime) {
  fibs_[3].set_next_hop(kPrefix, 2);
  fibs_[2].set_next_hop(kPrefix, 3);
  plane_.inject(3);  // TTL 128
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kTtlExhausted);
  // 127 full hops, dies attempting the 128th: t = 127 * 2 ms.
  EXPECT_EQ(fates_[0].when, sim::SimTime::millis(254));
}

TEST_F(DataPlaneTest, FibChangeMidFlightRedirectsPacket) {
  install_chain_routes();
  // Point node 2 into a loop with 3 initially.
  fibs_[2].set_next_hop(kPrefix, 3);
  fibs_[3].set_next_hop(kPrefix, 2);
  plane_.inject(3, /*ttl=*/100);
  // After 5 ms (packet bouncing), heal node 2's route.
  sim_.schedule_at(sim::SimTime::millis(5),
                   [&] { fibs_[2].set_next_hop(kPrefix, 1); });
  sim_.run();
  ASSERT_EQ(fates_.size(), 1u);
  EXPECT_EQ(fates_[0].fate, PacketFate::kDelivered);
}

TEST_F(DataPlaneTest, CountersAggregate) {
  install_chain_routes();
  plane_.inject(3);  // in flight toward 2 when the route there vanishes
  plane_.inject(1);  // one hop: delivered before any change matters
  fibs_[2].clear_route(kPrefix);
  plane_.inject(3);  // also dies at 2
  sim_.run();
  const auto& c = plane_.counters();
  EXPECT_EQ(c.injected, 3u);
  EXPECT_EQ(c.delivered, 1u);
  EXPECT_EQ(c.no_route, 2u);
  EXPECT_EQ(plane_.in_flight(), 0u);
}

TEST_F(DataPlaneTest, ManyConcurrentPacketsAllTerminate) {
  install_chain_routes();
  for (int i = 0; i < 500; ++i) {
    plane_.inject(3);
    plane_.inject(2);
  }
  sim_.run();
  EXPECT_EQ(fates_.size(), 1000u);
  EXPECT_EQ(plane_.counters().delivered, 1000u);
  EXPECT_EQ(plane_.in_flight(), 0u);
}

TEST_F(DataPlaneTest, PacketIdsAreUnique) {
  install_chain_routes();
  const auto a = plane_.inject(1);
  const auto b = plane_.inject(2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace bgpsim::fwd
