// Operation-level heap-vs-rings differential suite: both hop-store
// backends replay identical scripted histories — injections, FIB edits,
// link flaps, same-tick bursts — and must agree on every observable: the
// ordered fate stream, the counters, the bridge-fire count (events_fired
// feeds the trial digests), and the serialized hop-store bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "fwd/engine.hpp"
#include "sim/random.hpp"
#include "snap/codec.hpp"
#include "topo/generators.hpp"

namespace bgpsim::fwd {
namespace {

struct FateRow {
  std::uint64_t id = 0;
  PacketFate fate = PacketFate::kDelivered;
  net::NodeId where = net::kInvalidNode;
  sim::SimTime when;
  int hops = 0;
  bool operator==(const FateRow&) const = default;
};

class FateRecorder final : public FateSink {
 public:
  void on_fates(std::span<const FateRecord> batch) override {
    for (const FateRecord& r : batch) {
      rows.push_back(
          FateRow{r.packet.id, r.fate, r.where, r.when, r.packet.hops_taken});
    }
  }
  std::vector<FateRow> rows;
};

/// One scripted control- or data-plane action, applied at `at`.
struct Op {
  enum class Kind : std::uint8_t {
    kInject,
    kSetRoute,
    kClearRoute,
    kLinkToggle
  };
  Kind kind = Kind::kInject;
  sim::SimTime at;
  net::NodeId a = 0;  // inject source / FIB node / link endpoint
  net::NodeId b = 0;  // FIB next hop / other link endpoint
  net::Prefix prefix = 0;
  int ttl = kDefaultTtl;
  bool up = true;
};

struct Observed {
  std::vector<FateRow> fates;
  DataPlane::Counters counters;
  std::uint64_t events_fired = 0;
  std::size_t in_flight = 0;
  std::vector<std::uint8_t> bytes;  // save_state payload at probe_at
};

constexpr std::size_t kNodes = 6;

/// Replay `script` on a fresh 6-ring under the given backend. At
/// `probe_at` the hop store is serialized (and, when `roundtrip` is set,
/// restored in place and re-serialized — the round-trip must be invisible
/// downstream).
Observed execute(PlaneBackend backend, const std::vector<Op>& script,
                 sim::SimTime probe_at, bool roundtrip = false) {
  sim::Simulator sim;
  net::Topology topo = topo::make_ring(kNodes);
  std::vector<Fib> fibs(topo.node_count());
  DataPlaneOptions options;
  options.destinations = {0, 1};  // prefix 0 lives at node 0, prefix 1 at 1
  options.backend = backend;
  DataPlane plane{sim, topo, fibs, std::move(options)};
  FateRecorder recorder;
  plane.set_fate_sink(&recorder);

  for (const Op& op : script) {
    sim.schedule_at(op.at, [&, op] {
      switch (op.kind) {
        case Op::Kind::kInject:
          plane.inject(Injection{op.a, op.prefix, op.ttl});
          break;
        case Op::Kind::kSetRoute:
          fibs[op.a].set_next_hop(op.prefix, op.b);
          break;
        case Op::Kind::kClearRoute:
          fibs[op.a].clear_route(op.prefix);
          break;
        case Op::Kind::kLinkToggle:
          topo.set_link_state(*topo.link_between(op.a, op.b), op.up);
          break;
      }
    });
  }

  Observed out;
  sim.schedule_at(probe_at, [&] {
    snap::Writer w;
    plane.save_state(w);
    out.bytes = std::move(w).take();
    if (roundtrip) {
      snap::Reader r{out.bytes};
      plane.restore_state(r);
      r.finish();
      snap::Writer again;
      plane.save_state(again);
      ASSERT_EQ(out.bytes, std::move(again).take());
    }
  });

  sim.run();
  out.fates = recorder.rows;
  out.counters = plane.counters();
  out.events_fired = sim.events_fired();
  out.in_flight = plane.in_flight();
  return out;
}

void expect_equal(const Observed& heap, const Observed& rings) {
  EXPECT_EQ(heap.fates, rings.fates);
  EXPECT_EQ(heap.counters.injected, rings.counters.injected);
  EXPECT_EQ(heap.counters.delivered, rings.counters.delivered);
  EXPECT_EQ(heap.counters.ttl_exhausted, rings.counters.ttl_exhausted);
  EXPECT_EQ(heap.counters.no_route, rings.counters.no_route);
  EXPECT_EQ(heap.counters.link_down, rings.counters.link_down);
  EXPECT_EQ(heap.counters.hops, rings.counters.hops);
  EXPECT_EQ(heap.events_fired, rings.events_fired);
  EXPECT_EQ(heap.in_flight, rings.in_flight);
  EXPECT_EQ(heap.bytes, rings.bytes);
}

/// Routes every node around the ring toward node 0 on both prefixes
/// (prefix 1's destination, node 1, still terminates its own packets).
std::vector<Op> ring_routes() {
  std::vector<Op> ops;
  for (net::NodeId v = 1; v < kNodes; ++v) {
    for (net::Prefix p = 0; p < 2; ++p) {
      ops.push_back(Op{.kind = Op::Kind::kSetRoute,
                       .at = sim::SimTime::zero(),
                       .a = v,
                       .b = static_cast<net::NodeId>(v - 1),
                       .prefix = p});
    }
  }
  return ops;
}

/// Seed-derived history: ring routes, then a mix of injections (bursty,
/// loop-prone TTLs), route rewires toward arbitrary nodes (kLinkDown when
/// no ring edge exists), route clears (kNoRoute), and link flaps.
std::vector<Op> random_script(std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<Op> ops = ring_routes();
  constexpr int kTtls[] = {1, 2, 5, 10, kDefaultTtl};
  for (int i = 0; i < 60; ++i) {
    Op op;
    op.at = sim::SimTime::micros(
        static_cast<std::int64_t>(rng.next_below(50'000)));
    const auto node = static_cast<net::NodeId>(rng.next_below(kNodes));
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // half the script is traffic, often same-tick bursts
        op.kind = Op::Kind::kInject;
        op.a = node;
        op.prefix = static_cast<net::Prefix>(rng.next_below(2));
        op.ttl = kTtls[rng.next_below(5)];
        const auto burst = static_cast<std::size_t>(rng.uniform_int(1, 4));
        for (std::size_t j = 0; j < burst; ++j) {
          Op copy = op;
          copy.a = static_cast<net::NodeId>(rng.next_below(kNodes));
          ops.push_back(copy);
        }
        continue;
      }
      case 4: {  // rewire: neighbors form loops, strangers hit kLinkDown
        op.kind = Op::Kind::kSetRoute;
        op.a = node;
        op.b = static_cast<net::NodeId>(
            (node + 1 + rng.next_below(kNodes - 1)) % kNodes);
        op.prefix = static_cast<net::Prefix>(rng.next_below(2));
        break;
      }
      case 5: {
        op.kind = Op::Kind::kClearRoute;
        op.a = node;
        op.prefix = static_cast<net::Prefix>(rng.next_below(2));
        break;
      }
      default: {
        op.kind = Op::Kind::kLinkToggle;
        op.a = node;
        op.b = static_cast<net::NodeId>((node + 1) % kNodes);
        op.up = rng.chance(0.5);
        break;
      }
    }
    ops.push_back(op);
  }
  return ops;
}

TEST(DataPlaneBackendTest, RandomHistoriesAgree) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::vector<Op> script = random_script(seed);
    const sim::SimTime probe = sim::SimTime::micros(25'001);
    const Observed heap = execute(PlaneBackend::kHeap, script, probe);
    const Observed rings = execute(PlaneBackend::kRings, script, probe);
    expect_equal(heap, rings);
    EXPECT_FALSE(heap.fates.empty());
  }
}

TEST(DataPlaneBackendTest, SameTickBurstsKeepFifoOrder) {
  // 20 packets injected at the same instant from alternating sources:
  // FIFO within every tick cohort means fates must come out in exactly
  // injection order under both backends.
  std::vector<Op> script = ring_routes();
  for (int i = 0; i < 20; ++i) {
    script.push_back(Op{.kind = Op::Kind::kInject,
                        .at = sim::SimTime::millis(1),
                        .a = static_cast<net::NodeId>(2 + (i % 4)),
                        .prefix = 0});
  }
  const sim::SimTime probe = sim::SimTime::millis(3);
  const Observed heap = execute(PlaneBackend::kHeap, script, probe);
  const Observed rings = execute(PlaneBackend::kRings, script, probe);
  expect_equal(heap, rings);
  ASSERT_EQ(heap.fates.size(), 20u);
  for (std::size_t i = 1; i < heap.fates.size(); ++i) {
    // Same hop distance ⇒ same arrival tick ⇒ ids must stay ascending.
    if (heap.fates[i].when == heap.fates[i - 1].when) {
      EXPECT_GT(heap.fates[i].id, heap.fates[i - 1].id);
    }
  }
}

TEST(DataPlaneBackendTest, TerminalEdgesAgree) {
  // One script that forces every terminal fate: a delivery, a TTL death
  // in a 2-loop, a mid-path no-route, and a link-down drop.
  std::vector<Op> script = ring_routes();
  const auto t = [](std::int64_t ms) { return sim::SimTime::millis(ms); };
  script.push_back(Op{.kind = Op::Kind::kInject, .at = t(1), .a = 2});
  // 4 <-> 5 loop on prefix 1, entered at 5 with a tiny TTL.
  script.push_back(
      Op{.kind = Op::Kind::kSetRoute, .at = t(2), .a = 4, .b = 5, .prefix = 1});
  script.push_back(
      Op{.kind = Op::Kind::kSetRoute, .at = t(2), .a = 5, .b = 4, .prefix = 1});
  script.push_back(Op{
      .kind = Op::Kind::kInject, .at = t(3), .a = 5, .prefix = 1, .ttl = 7});
  // No-route mid-path: clear node 1's prefix-0 route, inject at 3 (the
  // packet walks 3 → 2 → 1 and dies at 1, reaching it at t(5) + 4 ms).
  script.push_back(Op{.kind = Op::Kind::kClearRoute, .at = t(4), .a = 1});
  script.push_back(Op{.kind = Op::Kind::kInject, .at = t(5), .a = 3});
  // Link-down drop: cut 2-1 after the no-route packet has cleared node 2,
  // then inject at 3 again (node 2's FIB still points at 1).
  script.push_back(Op{
      .kind = Op::Kind::kLinkToggle, .at = t(10), .a = 2, .b = 1, .up = false});
  script.push_back(Op{.kind = Op::Kind::kInject, .at = t(11), .a = 3});
  const Observed heap = execute(PlaneBackend::kHeap, script, t(12));
  const Observed rings = execute(PlaneBackend::kRings, script, t(12));
  expect_equal(heap, rings);
  EXPECT_EQ(heap.counters.delivered, 1u);
  EXPECT_EQ(heap.counters.ttl_exhausted, 1u);
  EXPECT_EQ(heap.counters.no_route, 1u);
  EXPECT_EQ(heap.counters.link_down, 1u);
}

TEST(DataPlaneBackendTest, MidRunRoundTripIsInvisible) {
  // Serialize/restore/re-serialize the hop store mid-flight under both
  // backends: the bytes must be stable and the downstream fate stream
  // identical to an uninterrupted run.
  for (std::uint64_t seed : {3ULL, 7ULL, 19ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::vector<Op> script = random_script(seed);
    const sim::SimTime probe = sim::SimTime::micros(25'001);
    for (const PlaneBackend backend :
         {PlaneBackend::kHeap, PlaneBackend::kRings}) {
      SCOPED_TRACE(backend == PlaneBackend::kHeap ? "heap" : "rings");
      const Observed plain = execute(backend, script, probe, false);
      const Observed cycled = execute(backend, script, probe, true);
      EXPECT_EQ(plain.fates, cycled.fates);
      EXPECT_EQ(plain.bytes, cycled.bytes);
      EXPECT_EQ(plain.events_fired, cycled.events_fired);
    }
  }
}

TEST(DataPlaneBackendTest, SerializedBytesAreBackendInvariantWhileLooping) {
  // Pin a long-lived 2-loop so the probe catches a non-trivial in-flight
  // set; the canonical (at, seq) ascending serialization must agree.
  std::vector<Op> script = ring_routes();
  script.push_back(
      Op{.kind = Op::Kind::kSetRoute, .at = sim::SimTime::millis(1), .a = 3,
         .b = 4});
  script.push_back(
      Op{.kind = Op::Kind::kSetRoute, .at = sim::SimTime::millis(1), .a = 4,
         .b = 3});
  for (int i = 0; i < 8; ++i) {
    script.push_back(Op{.kind = Op::Kind::kInject,
                        .at = sim::SimTime::millis(2 + i),
                        .a = 4});
  }
  const sim::SimTime probe = sim::SimTime::millis(30);
  const Observed heap = execute(PlaneBackend::kHeap, script, probe);
  const Observed rings = execute(PlaneBackend::kRings, script, probe);
  expect_equal(heap, rings);
  // The probe must have caught packets in flight: the payload holds the
  // 89-byte fixed prologue plus 60 bytes per serialized hop event.
  EXPECT_GE(heap.bytes.size(), 89u + 60u);
  EXPECT_EQ(heap.counters.ttl_exhausted, 8u);
}

}  // namespace
}  // namespace bgpsim::fwd
