// The parallel trial runner must be indistinguishable from the serial one:
// same seed layout (base.seed + i), results collected in trial order, and
// bit-identical Summary statistics at any job count.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/sweep.hpp"
#include "metrics/trace.hpp"

namespace bgpsim::core {
namespace {

Scenario clique_tdown() {
  Scenario s;
  s.topology.kind = TopologyKind::kClique;
  s.topology.size = 6;
  s.event = EventKind::kTdown;
  s.seed = 11;
  return s;
}

Scenario internet_tlong() {
  Scenario s;
  s.topology.kind = TopologyKind::kInternet;
  s.topology.size = 29;
  s.topology.topo_seed = 7;
  s.event = EventKind::kTlong;
  s.seed = 11;
  return s;
}

void expect_identical(const TrialSet& a, const TrialSet& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_EQ(a.runs[i].destination, b.runs[i].destination);
    EXPECT_EQ(a.runs[i].failed_link, b.runs[i].failed_link);
    EXPECT_EQ(a.runs[i].events_fired, b.runs[i].events_fired);
    const auto& ma = a.runs[i].metrics;
    const auto& mb = b.runs[i].metrics;
    EXPECT_EQ(ma.convergence_time_s, mb.convergence_time_s);
    EXPECT_EQ(ma.looping_duration_s, mb.looping_duration_s);
    EXPECT_EQ(ma.ttl_exhaustions, mb.ttl_exhaustions);
    EXPECT_EQ(ma.looping_ratio, mb.looping_ratio);
    EXPECT_EQ(ma.loops_formed, mb.loops_formed);
    EXPECT_EQ(ma.updates_sent, mb.updates_sent);
    EXPECT_EQ(ma.packets_sent_total, mb.packets_sent_total);
  }
  const auto expect_summary_eq = [](const metrics::Summary& x,
                                    const metrics::Summary& y) {
    EXPECT_EQ(x.n, y.n);
    EXPECT_EQ(x.mean, y.mean);  // bitwise: same values, same fold order
    EXPECT_EQ(x.stddev, y.stddev);
    EXPECT_EQ(x.min, y.min);
    EXPECT_EQ(x.max, y.max);
    EXPECT_EQ(x.median, y.median);
  };
  expect_summary_eq(a.convergence_time_s, b.convergence_time_s);
  expect_summary_eq(a.looping_duration_s, b.looping_duration_s);
  expect_summary_eq(a.ttl_exhaustions, b.ttl_exhaustions);
  expect_summary_eq(a.looping_ratio, b.looping_ratio);
  expect_summary_eq(a.loops_formed, b.loops_formed);
  expect_summary_eq(a.max_loop_duration_s, b.max_loop_duration_s);
}

TEST(SweepParallelTest, CliqueTdownMatchesSerialAtAnyJobCount) {
  const TrialSet serial =
      run_trials(clique_tdown(), RunOptions{.trials = 4, .jobs = 1});
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_identical(serial, run_trials(clique_tdown(),
                                        RunOptions{.trials = 4, .jobs = jobs}));
  }
}

TEST(SweepParallelTest, InternetTlongMatchesSerialAtAnyJobCount) {
  const TrialSet serial =
      run_trials(internet_tlong(), RunOptions{.trials = 3, .jobs = 1});
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_identical(serial, run_trials(internet_tlong(),
                                        RunOptions{.trials = 3, .jobs = jobs}));
  }
}

TEST(SweepParallelTest, TraceScenarioFallsBackToSerial) {
  // A caller-owned trace sink is unsynchronized, so the parallel entry
  // point must run such scenarios serially — and still record events.
  metrics::TraceRecorder trace;
  Scenario s = clique_tdown();
  s.trace = &trace;
  const TrialSet set = run_trials(s, RunOptions{.trials = 2, .jobs = 8});
  EXPECT_EQ(set.runs.size(), 2u);
  EXPECT_GT(trace.size(), 0u);
}

TEST(SweepParallelTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
}

// The pre-RunOptions entry points are [[deprecated]] thin shims; until they
// are removed they must keep producing the exact same results as the
// canonical run_trials(base, RunOptions) call they forward to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(SweepParallelTest, DeprecatedShimsMatchTheRunOptionsEngine) {
  const TrialSet canonical =
      run_trials(clique_tdown(), RunOptions{.trials = 3, .jobs = 1});
  expect_identical(canonical, run_trials(clique_tdown(), 3));
  expect_identical(canonical, run_trials_parallel(clique_tdown(), 3, 2));
}
#pragma GCC diagnostic pop

TEST(SweepParallelTest, EnvOrRejectsTrailingGarbageWithFallback) {
  ::setenv("BGPSIM_TEST_KNOB", "8x", 1);
  EXPECT_EQ(env_or("BGPSIM_TEST_KNOB", 3), 3u);  // warns on stderr
  ::setenv("BGPSIM_TEST_KNOB", "8", 1);
  EXPECT_EQ(env_or("BGPSIM_TEST_KNOB", 3), 8u);
  ::unsetenv("BGPSIM_TEST_KNOB");
  EXPECT_EQ(env_or("BGPSIM_TEST_KNOB", 3), 3u);
}

}  // namespace
}  // namespace bgpsim::core
