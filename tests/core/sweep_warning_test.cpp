// run_trials must say why it degrades to serial execution: a
// caller who attached a trace recorder or an invariant oracle and asked
// for N jobs should find the reason in the log, not a silent one-core run.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "metrics/trace.hpp"
#include "sim/logging.hpp"

namespace bgpsim::core {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.topology.kind = TopologyKind::kClique;
  s.topology.size = 4;
  s.bgp.mrai = sim::SimTime::seconds(2);
  s.seed = 3;
  return s;
}

class LogCapture {
 public:
  LogCapture() {
    sim::Log::set_level(sim::LogLevel::kInfo);
    sim::Log::set_sink([this](sim::LogLevel, std::string_view component,
                              sim::SimTime, std::string_view message) {
      lines_.push_back(std::string{component} + ": " + std::string{message});
    });
  }
  ~LogCapture() {
    sim::Log::set_sink(nullptr);
    sim::Log::set_level(sim::LogLevel::kOff);
  }

  [[nodiscard]] bool contains(const std::string& needle) const {
    for (const auto& line : lines_) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }
  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }

 private:
  std::vector<std::string> lines_;
};

TEST(SweepWarning, OracleFallbackIsAnnounced) {
  LogCapture capture;
  Scenario s = small_scenario();
  check::Oracle oracle = check::Oracle::standard();
  s.oracle = &oracle;

  const TrialSet set = run_trials(s, RunOptions{.trials = 2, .jobs = 2});
  EXPECT_EQ(set.runs.size(), 2U);  // fallback still runs every trial
  EXPECT_TRUE(capture.contains("falling back to serial"));
  EXPECT_TRUE(capture.contains("invariant oracle"));
}

TEST(SweepWarning, TraceFallbackNamesTheRecorder) {
  LogCapture capture;
  Scenario s = small_scenario();
  metrics::TraceRecorder trace;
  s.trace = &trace;

  const TrialSet set = run_trials(s, RunOptions{.trials = 2, .jobs = 2});
  EXPECT_EQ(set.runs.size(), 2U);
  EXPECT_TRUE(capture.contains("falling back to serial"));
  EXPECT_TRUE(capture.contains("trace recorder"));
}

TEST(SweepWarning, GenuineParallelRunStaysQuiet) {
  LogCapture capture;
  const TrialSet set =
      run_trials(small_scenario(), RunOptions{.trials = 2, .jobs = 2});
  EXPECT_EQ(set.runs.size(), 2U);
  EXPECT_FALSE(capture.contains("falling back to serial"));
}

}  // namespace
}  // namespace bgpsim::core
