#include "core/scenario_file.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"

namespace bgpsim::core {
namespace {

TEST(ScenarioFile, ParsesFullDescription) {
  const auto s = parse_scenario_string(R"(
# A Tlong comparison point
topology = bclique
size = 15
event = tlong
protocol = ghost
mrai = 45
jitter_lo = 1.0
jitter_hi = 1.0
seed = 9
processing_min_ms = 50
processing_max_ms = 250
traffic_pps = 20
ttl = 64
caution = 2.5
)");
  EXPECT_EQ(s.topology.kind, TopologyKind::kBClique);
  EXPECT_EQ(s.topology.size, 15u);
  EXPECT_EQ(s.event, EventKind::kTlong);
  EXPECT_TRUE(s.bgp.ghost_flushing);
  EXPECT_FALSE(s.bgp.ssld);
  EXPECT_EQ(s.bgp.mrai, sim::SimTime::seconds(45));
  EXPECT_EQ(s.bgp.jitter_lo, 1.0);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.processing.min, sim::SimTime::millis(50));
  EXPECT_EQ(s.processing.max, sim::SimTime::millis(250));
  EXPECT_EQ(s.traffic.interval, sim::SimTime::millis(50));
  EXPECT_EQ(s.traffic.ttl, 64);
  EXPECT_EQ(s.bgp.backup_caution, sim::SimTime::seconds(2.5));
}

TEST(ScenarioFile, DefaultsMatchScenarioDefaults) {
  const auto s = parse_scenario_string("topology = clique\nsize = 10\n");
  const Scenario defaults;
  EXPECT_EQ(s.event, EventKind::kTdown);
  EXPECT_EQ(s.bgp.mrai, defaults.bgp.mrai);
  EXPECT_EQ(s.bgp.jitter_lo, defaults.bgp.jitter_lo);
  EXPECT_EQ(s.seed, defaults.seed);
  EXPECT_FALSE(s.policy_routing);
}

TEST(ScenarioFile, CommentsAndBlanksIgnored) {
  const auto s = parse_scenario_string(
      "# header\n\n  topology = ring   # inline\n\tsize = 7\n\n");
  EXPECT_EQ(s.topology.kind, TopologyKind::kRing);
  EXPECT_EQ(s.topology.size, 7u);
}

TEST(ScenarioFile, OptionalOverrides) {
  const auto s = parse_scenario_string(
      "topology = bclique\nsize = 5\nevent = tlong\n"
      "destination = 3\ntlong_link = 2\npolicy = false\n");
  EXPECT_EQ(s.destination, 3u);
  EXPECT_EQ(s.tlong_link, 2u);
}

TEST(ScenarioFile, ErrorsCarryLineNumbers) {
  try {
    (void)parse_scenario_string("topology = clique\nsize = banana\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(ScenarioFile, RejectsUnknownKey) {
  EXPECT_THROW(
      (void)parse_scenario_string("topology = clique\nsize = 5\nfoo = 1\n"),
      std::runtime_error);
}

TEST(ScenarioFile, RejectsUnknownEnumValues) {
  EXPECT_THROW((void)parse_scenario_string("topology = mesh\nsize = 5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 5\nevent = boom\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 5\nprotocol = rip\n"),
               std::runtime_error);
}

TEST(ScenarioFile, RejectsDuplicateKeys) {
  try {
    (void)parse_scenario_string(
        "topology = clique\nsize = 5\nmrai = 30\nmrai = 45\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what{e.what()};
    // The diagnostic names the duplicate and points at the first definition.
    EXPECT_NE(what.find("mrai"), std::string::npos);
    EXPECT_NE(what.find("line 3"), std::string::npos);
  }
}

TEST(ScenarioFile, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_scenario_string("topology = clique\nsize\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario_string("topology = clique\nsize =\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario_string("topology = clique\nsize = 5\nmrai = -3\n"),
      std::runtime_error);
}

TEST(ScenarioFile, ParsesFlapEvent) {
  const auto s = parse_scenario_string(
      "topology = bclique\nsize = 4\nevent = flap\nflap_s = 7.5\n");
  EXPECT_EQ(s.event, EventKind::kFlap);
  EXPECT_EQ(s.flap_interval, sim::SimTime::seconds(7.5));
}

TEST(ScenarioFile, FlapIntervalMustBePositive) {
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = bclique\nsize = 4\nevent = flap\nflap_s = 0\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario_string(
          "topology = bclique\nsize = 4\nevent = flap\nflap_s = -2\n"),
      std::runtime_error);
}

TEST(ScenarioFile, FlapRoundTripsThroughText) {
  Scenario original;
  original.topology.kind = TopologyKind::kBClique;
  original.topology.size = 4;
  original.event = EventKind::kFlap;
  original.flap_interval = sim::SimTime::seconds(9);
  const auto restored = parse_scenario_string(to_scenario_text(original));
  EXPECT_EQ(restored.event, EventKind::kFlap);
  EXPECT_EQ(restored.flap_interval, original.flap_interval);
}

TEST(ScenarioFile, RequiresTopologyAndSize) {
  EXPECT_THROW((void)parse_scenario_string("size = 5\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario_string("topology = clique\n"),
               std::runtime_error);
}

TEST(ScenarioFile, RejectsInvertedRanges) {
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 5\n"
                   "jitter_lo = 1.0\njitter_hi = 0.5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 5\n"
                   "processing_min_ms = 500\nprocessing_max_ms = 100\n"),
               std::runtime_error);
}

TEST(ScenarioFile, RoundTripsThroughText) {
  Scenario original;
  original.topology.kind = TopologyKind::kInternet;
  original.topology.size = 48;
  original.topology.topo_seed = 11;
  original.event = EventKind::kTlong;
  original.bgp = original.bgp.with(bgp::Enhancement::kWrate);
  original.bgp.mrai = sim::SimTime::seconds(12);
  original.bgp.backup_caution = sim::SimTime::seconds(3);
  original.policy_routing = true;
  original.seed = 21;
  original.destination = 40;

  const auto restored = parse_scenario_string(to_scenario_text(original));
  EXPECT_EQ(restored.topology.kind, original.topology.kind);
  EXPECT_EQ(restored.topology.size, original.topology.size);
  EXPECT_EQ(restored.topology.topo_seed, original.topology.topo_seed);
  EXPECT_EQ(restored.event, original.event);
  EXPECT_TRUE(restored.bgp.wrate);
  EXPECT_EQ(restored.bgp.mrai, original.bgp.mrai);
  EXPECT_EQ(restored.bgp.backup_caution, original.bgp.backup_caution);
  EXPECT_EQ(restored.policy_routing, original.policy_routing);
  EXPECT_EQ(restored.seed, original.seed);
  EXPECT_EQ(restored.destination, original.destination);
}

TEST(ScenarioFile, AsGraphRoundTripsThroughText) {
  Scenario original;
  original.topology.kind = TopologyKind::kAsGraph;
  original.topology.size = 1000;
  original.topology.topo_seed = 4;
  original.policy_routing = true;
  const auto restored = parse_scenario_string(to_scenario_text(original));
  EXPECT_EQ(restored.topology.kind, TopologyKind::kAsGraph);
  EXPECT_EQ(restored.topology.size, 1000u);
  EXPECT_TRUE(restored.policy_routing);
}

TEST(ScenarioFile, RelFileWaivesSizeAndRoundTrips) {
  const auto s = parse_scenario_string(
      "topology = relfile\nrel_file = /data/as-rel.txt\npolicy = true\n");
  EXPECT_EQ(s.topology.kind, TopologyKind::kRelFile);
  EXPECT_EQ(s.topology.rel_file, "/data/as-rel.txt");
  const auto restored = parse_scenario_string(to_scenario_text(s));
  EXPECT_EQ(restored.topology.rel_file, "/data/as-rel.txt");
}

TEST(ScenarioFile, RelFileTopologyRequiresThePath) {
  EXPECT_THROW((void)parse_scenario_string("topology = relfile\n"),
               std::runtime_error);
}

TEST(ScenarioFile, RelFileKeyRequiresRelFileTopology) {
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 5\nrel_file = x.txt\n"),
               std::runtime_error);
}

TEST(ScenarioFile, ParsesMultiPrefixKeys) {
  const auto s = parse_scenario_string(
      "topology = clique\nsize = 6\nprefixes = 8\norigins = 1, 3, 4\n");
  EXPECT_EQ(s.prefixes, 8u);
  EXPECT_EQ(s.origins, (std::vector<net::NodeId>{1, 3, 4}));
}

TEST(ScenarioFile, MultiPrefixRoundTripsThroughText) {
  Scenario original;
  original.topology.kind = TopologyKind::kClique;
  original.topology.size = 6;
  original.prefixes = 16;
  original.origins = {2, 5};
  const auto restored = parse_scenario_string(to_scenario_text(original));
  EXPECT_EQ(restored.prefixes, 16u);
  EXPECT_EQ(restored.origins, original.origins);
}

TEST(ScenarioFile, RejectsDuplicatePrefixesKey) {
  try {
    (void)parse_scenario_string(
        "topology = clique\nsize = 6\nprefixes = 4\nprefixes = 8\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("duplicate key 'prefixes'"), std::string::npos);
    EXPECT_NE(what.find("line 4"), std::string::npos);
    EXPECT_NE(what.find("line 3"), std::string::npos);
  }
}

TEST(ScenarioFile, PrefixCountMustBePositive) {
  try {
    (void)parse_scenario_string(
        "topology = clique\nsize = 6\nprefixes = 0\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("line 3"), std::string::npos);
    EXPECT_NE(what.find("at least 1"), std::string::npos);
  }
  // stoull would silently wrap a negative count to a huge table.
  try {
    (void)parse_scenario_string(
        "topology = clique\nsize = 6\nprefixes = -4\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("positive count"),
              std::string::npos);
  }
}

TEST(ScenarioFile, OriginMustNameATopologyNode) {
  try {
    (void)parse_scenario_string(
        "topology = clique\nsize = 6\nprefixes = 4\norigins = 2, 6\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("line 4"), std::string::npos);
    EXPECT_NE(what.find("origin AS 6 out of range"), std::string::npos);
  }
  // BClique topologies have 2×size nodes; origin 7 is valid there.
  const auto s = parse_scenario_string(
      "topology = bclique\nsize = 4\nprefixes = 4\norigins = 7\n");
  EXPECT_EQ(s.origins, (std::vector<net::NodeId>{7}));
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = bclique\nsize = 4\nprefixes = 4\n"
                   "origins = 8\n"),
               std::runtime_error);
}

TEST(ScenarioFile, OriginsRequireAMultiPrefixTable) {
  // origins without prefixes, and origins with prefixes = 1, are both
  // configuration mistakes (prefix 0 always originates at the destination).
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 6\norigins = 2\n"),
               std::runtime_error);
  try {
    (void)parse_scenario_string(
        "topology = clique\nsize = 6\nprefixes = 1\norigins = 2\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("prefixes >= 2"), std::string::npos);
  }
}

TEST(ScenarioFile, RejectsMalformedOriginLists) {
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 6\nprefixes = 4\n"
                   "origins = 1,,2\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario_string(
                   "topology = clique\nsize = 6\nprefixes = 4\n"
                   "origins = -1\n"),
               std::runtime_error);
}

TEST(ScenarioFile, ParsedScenarioActuallyRuns) {
  const auto s = parse_scenario_string(
      "topology = clique\nsize = 5\nevent = tdown\nseed = 2\n");
  const auto out = run_experiment(s);
  EXPECT_GT(out.metrics.convergence_time_s, 0.0);
}

}  // namespace
}  // namespace bgpsim::core
