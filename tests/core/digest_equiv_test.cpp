// The RunOptions performance levers must be invisible in the output:
// AS-path interning (bgp::PathStore), the prelude snapshot cache, and the
// parallel fan-out each change how a run executes, never what it produces.
// Each test compares svc::trialset_digest — a content hash over the codec
// encoding of every run plus the summaries — across lever settings.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dv_experiment.hpp"
#include "core/ls_experiment.hpp"
#include "core/run_options.hpp"
#include "core/sweep.hpp"
#include "snap/codec.hpp"
#include "svc/protocol.hpp"

namespace bgpsim::core {
namespace {

Scenario clique_tdown() {
  Scenario s;
  s.topology.kind = TopologyKind::kClique;
  s.topology.size = 6;
  s.event = EventKind::kTdown;
  s.seed = 11;
  return s;
}

Scenario internet_tlong() {
  Scenario s;
  s.topology.kind = TopologyKind::kInternet;
  s.topology.size = 29;
  s.topology.topo_seed = 7;
  s.event = EventKind::kTlong;
  s.seed = 11;
  return s;
}

/// Every dimension whose hot path touches interned AS paths: the base
/// protocol, each enhancement, a flap event, and policy routing.
std::vector<std::pair<std::string, Scenario>> scenario_matrix() {
  std::vector<std::pair<std::string, Scenario>> matrix;
  matrix.emplace_back("clique-tdown", clique_tdown());
  matrix.emplace_back("internet-tlong", internet_tlong());
  for (const bgp::Enhancement e :
       {bgp::Enhancement::kSsld, bgp::Enhancement::kWrate,
        bgp::Enhancement::kAssertion, bgp::Enhancement::kGhostFlushing}) {
    Scenario s = clique_tdown();
    s.bgp = s.bgp.with(e);
    matrix.emplace_back(std::string{"clique-tdown-"} + to_string(e), s);
  }
  {
    Scenario s = clique_tdown();
    s.event = EventKind::kFlap;
    matrix.emplace_back("clique-flap", s);
  }
  {
    Scenario s = internet_tlong();
    s.policy_routing = true;
    matrix.emplace_back("internet-tlong-policy", s);
  }
  return matrix;
}

std::uint64_t digest(const Scenario& s, const RunOptions& options) {
  return svc::trialset_digest(run_trials(s, options));
}

TEST(DigestEquivTest, PathInterningIsOutputInvariant) {
  for (const auto& [name, s] : scenario_matrix()) {
    SCOPED_TRACE(name);
    const std::uint64_t interned =
        digest(s, RunOptions{.trials = 2, .jobs = 1, .path_interning = true});
    const std::uint64_t plain =
        digest(s, RunOptions{.trials = 2, .jobs = 1, .path_interning = false});
    EXPECT_EQ(interned, plain);
  }
}

TEST(DigestEquivTest, PathInterningIsOutputInvariantUnderParallelFanOut) {
  // Cross both levers at once: serial+interned vs parallel+plain (and the
  // transpose) — every combination must land on one digest.
  const Scenario s = internet_tlong();
  const std::uint64_t reference =
      digest(s, RunOptions{.trials = 4, .jobs = 1, .path_interning = true});
  EXPECT_EQ(reference, digest(s, RunOptions{.trials = 4, .jobs = 4,
                                            .path_interning = false}));
  EXPECT_EQ(reference, digest(s, RunOptions{.trials = 4, .jobs = 4,
                                            .path_interning = true}));
  EXPECT_EQ(reference, digest(s, RunOptions{.trials = 4, .jobs = 1,
                                            .path_interning = false}));
}

TEST(DigestEquivTest, PreludeCacheIsOutputInvariant) {
  const Scenario s = clique_tdown();
  const RunOptions cold{.trials = 3, .jobs = 1, .snap_cache = false};
  const RunOptions warm{.trials = 3, .jobs = 1, .snap_cache = true};
  const std::uint64_t cold_digest = digest(s, cold);
  // First warm run may fill the cache; the second must hit it. All three
  // digests agree or the cache leaks into the results.
  EXPECT_EQ(cold_digest, digest(s, warm));
  EXPECT_EQ(cold_digest, digest(s, warm));
}

std::uint64_t outcome_fingerprint(const ExperimentOutcome& o) {
  snap::Writer w;
  svc::write_outcome(w, o);
  return snap::fnv1a(w.bytes());
}

TEST(DigestEquivTest, AllThreeDriversAreInterningInvariant) {
  // The interning toggle is process-global while a run executes; the DV
  // and LS drivers share the pooled scheduler and data plane with BGP, so
  // pin each driver's outcome bytes across both settings.
  const auto with_interning = [](bool on, const auto& run) {
    detail::PathInterningGuard guard{on};
    return outcome_fingerprint(run());
  };
  const auto check = [&](const char* name, const auto& run) {
    SCOPED_TRACE(name);
    EXPECT_EQ(with_interning(true, run), with_interning(false, run));
  };
  check("bgp", [] { return run_experiment(clique_tdown()); });
  check("dv", [] {
    DvScenario s;
    s.topology.kind = TopologyKind::kClique;
    s.topology.size = 6;
    s.event = EventKind::kTdown;
    s.seed = 11;
    return run_dv_experiment(s);
  });
  check("ls", [] {
    LsScenario s;
    s.topology.kind = TopologyKind::kRing;
    s.topology.size = 8;
    s.seed = 11;
    return run_ls_experiment(s);
  });
}

TEST(DigestEquivTest, DigestIsSensitiveToTheScenario) {
  // Guard the guard: a digest that never changes would make every
  // equivalence test above vacuous.
  const RunOptions options{.trials = 2, .jobs = 1};
  EXPECT_NE(digest(clique_tdown(), options),
            digest(internet_tlong(), options));
}

}  // namespace
}  // namespace bgpsim::core
