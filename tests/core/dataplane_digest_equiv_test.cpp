// The data-plane hop store must be invisible in the output: every digest
// — serial, thread-parallel, and multi-process — must be bit-identical
// with BGPSIM_DATAPLANE_RINGS on and off, and snapshots taken under one
// backend must restore (and verify) under the other. The heap is the
// per-event reference; any divergence here means batched cohort draining
// or the per-(node, prefix) decision memo changed observable behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/run_options.hpp"
#include "core/sweep.hpp"
#include "snap/snapshot.hpp"
#include "svc/coordinator.hpp"
#include "svc/protocol.hpp"

namespace bgpsim::core {
namespace {

Scenario clique_tdown() {
  Scenario s;
  s.topology.kind = TopologyKind::kClique;
  s.topology.size = 6;
  s.event = EventKind::kTdown;
  s.seed = 11;
  return s;
}

Scenario internet_tlong() {
  Scenario s;
  s.topology.kind = TopologyKind::kInternet;
  s.topology.size = 29;
  s.topology.topo_seed = 7;
  s.event = EventKind::kTlong;
  s.seed = 11;
  return s;
}

Scenario clique_multiprefix() {
  Scenario s = clique_tdown();
  s.prefixes = 4;  // batched decisions with several (node, prefix) keys
  return s;
}

/// The dimensions whose hot paths the ring store reorders internally:
/// heavy looping traffic under each enhancement, flap re-arming, policy
/// routing, and multi-prefix cohorts sharing one drain.
std::vector<std::pair<std::string, Scenario>> scenario_matrix() {
  std::vector<std::pair<std::string, Scenario>> matrix;
  matrix.emplace_back("clique-tdown", clique_tdown());
  matrix.emplace_back("internet-tlong", internet_tlong());
  matrix.emplace_back("clique-multiprefix", clique_multiprefix());
  for (const bgp::Enhancement e :
       {bgp::Enhancement::kSsld, bgp::Enhancement::kWrate,
        bgp::Enhancement::kAssertion, bgp::Enhancement::kGhostFlushing}) {
    Scenario s = clique_tdown();
    s.bgp = s.bgp.with(e);
    matrix.emplace_back(std::string{"clique-tdown-"} + to_string(e), s);
  }
  {
    Scenario s = clique_tdown();
    s.event = EventKind::kFlap;
    matrix.emplace_back("clique-flap", s);
  }
  {
    Scenario s = internet_tlong();
    s.policy_routing = true;
    matrix.emplace_back("internet-tlong-policy", s);
  }
  return matrix;
}

std::uint64_t digest(const Scenario& s, const RunOptions& options) {
  return svc::trialset_digest(run_trials(s, options));
}

/// RAII: pin BGPSIM_DATAPLANE_RINGS itself — the svc campaign path must
/// be exercised through the real knob because workers are separate
/// processes (RunOptions never crosses the wire; each worker resolves the
/// backend from its own environment at DataPlane construction).
class EnvKnob {
 public:
  EnvKnob(const char* name, const char* value) : name_{name} {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~EnvKnob() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvKnob(const EnvKnob&) = delete;
  EnvKnob& operator=(const EnvKnob&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(DataPlaneDigestEquivTest, RunOptionsLeverIsOutputInvariant) {
  for (const auto& [name, s] : scenario_matrix()) {
    SCOPED_TRACE(name);
    const std::uint64_t rings = digest(
        s, RunOptions{.trials = 2, .jobs = 1, .dataplane_rings = true});
    const std::uint64_t heap = digest(
        s, RunOptions{.trials = 2, .jobs = 1, .dataplane_rings = false});
    EXPECT_EQ(rings, heap);
  }
}

TEST(DataPlaneDigestEquivTest, BackendIsOutputInvariantAcrossThreadCounts) {
  // Cross the backend with the fan-out width: every (backend, jobs)
  // combination must land on one digest.
  const Scenario s = internet_tlong();
  const std::uint64_t reference = digest(
      s, RunOptions{.trials = 8, .jobs = 1, .dataplane_rings = true});
  for (const bool rings : {true, false}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
      SCOPED_TRACE(std::string{rings ? "rings" : "heap"} + " jobs=" +
                   std::to_string(jobs));
      EXPECT_EQ(reference,
                digest(s, RunOptions{.trials = 8, .jobs = jobs,
                                     .dataplane_rings = rings}));
    }
  }
}

TEST(DataPlaneDigestEquivTest, CampaignWorkersFollowTheEnvKnob) {
  svc::CampaignSpec spec;
  spec.scenarios = {clique_tdown(), internet_tlong()};
  spec.run.trials = 4;
  spec.run.jobs = 1;
  spec.unit_trials = 1;

  // Reference: the in-process serial runner under the default backend.
  std::vector<TrialSet> sets;
  for (const Scenario& s : spec.scenarios) sets.push_back(run_trials(s, spec.run));
  const std::uint64_t expected = svc::campaign_digest(sets);

  for (const char* knob : {"0", "1"}) {
    EnvKnob env{"BGPSIM_DATAPLANE_RINGS", knob};
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(std::string{"BGPSIM_DATAPLANE_RINGS="} + knob +
                   " workers=" + std::to_string(workers));
      EXPECT_EQ(svc::run_campaign(spec, workers).digest, expected);
    }
  }
}

TEST(DataPlaneDigestEquivTest, SnapshotsAreBackendPortableBothWays) {
  // Save the converged prelude under one backend, warm-start under the
  // other (the hop store serializes in backend-invariant ascending
  // (time, seq) order), and require bit-identical snapshot payloads and
  // outcomes.
  const auto capture = [](bool rings) {
    detail::DataPlaneRingsGuard backend{rings};
    Scenario cold = clique_tdown();
    snap::Snapshot converged;
    cold.save_converged = &converged;
    const ExperimentOutcome out = run_experiment(cold);
    return std::pair{std::move(converged), out.events_fired};
  };
  const auto warm_events = [](const snap::Snapshot& snap, bool rings) {
    detail::DataPlaneRingsGuard backend{rings};
    Scenario warm = clique_tdown();
    warm.warm_start = &snap;
    return run_experiment(warm).events_fired;
  };

  const auto [heap_snap, heap_fired] = capture(false);
  const auto [ring_snap, ring_fired] = capture(true);
  ASSERT_FALSE(heap_snap.empty());
  EXPECT_EQ(heap_fired, ring_fired);
  // The hop store is serialized in backend-invariant (time, seq) form, so
  // the payload bytes must agree exactly.
  EXPECT_EQ(heap_snap.content_hash(), ring_snap.content_hash());
  EXPECT_EQ(heap_snap.payload(), ring_snap.payload());

  // Cross-restore: heap snapshot under rings and vice versa, checked
  // against the same-backend restores.
  const std::uint64_t reference = warm_events(heap_snap, false);
  EXPECT_EQ(reference, warm_events(heap_snap, true));
  EXPECT_EQ(reference, warm_events(ring_snap, false));
  EXPECT_EQ(reference, warm_events(ring_snap, true));
}

TEST(DataPlaneDigestEquivTest, LeversComposeWithTheSchedulerBackend) {
  // The two A/B levers are independent: all four (wheel, rings) settings
  // must produce one digest.
  const Scenario s = clique_multiprefix();
  const std::uint64_t reference = digest(
      s, RunOptions{.trials = 2, .jobs = 1, .timer_wheel = true,
                    .dataplane_rings = true});
  for (const bool wheel : {true, false}) {
    for (const bool rings : {true, false}) {
      SCOPED_TRACE(std::string{wheel ? "wheel" : "heap-sched"} + "+" +
                   (rings ? "rings" : "heap-plane"));
      EXPECT_EQ(reference,
                digest(s, RunOptions{.trials = 2, .jobs = 1,
                                     .timer_wheel = wheel,
                                     .dataplane_rings = rings}));
    }
  }
}

}  // namespace
}  // namespace bgpsim::core
