#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace bgpsim::core {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table t{{"name", "value"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "23456"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // First column left-aligned, second right-aligned.
  EXPECT_NE(text.find("name    value"), std::string::npos);
  EXPECT_NE(text.find("x           1"), std::string::npos);
  EXPECT_NE(text.find("longer  23456"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, JsonOutput) {
  Table t{{"n", "conv (s)"}};
  t.add_row({"5", "29.3 ±0.0"});
  t.add_row({"10", "155.7 ±0.0"});
  std::ostringstream out;
  t.write_json(out, "Figure 4(a)");
  EXPECT_EQ(out.str(),
            "{\"title\": \"Figure 4(a)\", \"headers\": [\"n\", \"conv (s)\"], "
            "\"rows\": [[\"5\", \"29.3 ±0.0\"], [\"10\", \"155.7 ±0.0\"]]}");
}

TEST(Table, JsonOmitsEmptyTitleAndEscapes) {
  Table t{{"quote\"backslash\\", "tab\tnewline\n"}};
  t.add_row({"ctrl\x01", "plain"});
  std::ostringstream out;
  t.write_json(out);
  EXPECT_EQ(out.str(),
            "{\"headers\": [\"quote\\\"backslash\\\\\", \"tab\\tnewline\\n\"], "
            "\"rows\": [[\"ctrl\\u0001\", \"plain\"]]}");
}

TEST(Table, RowCount) {
  Table t{{"a"}};
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Format, FmtDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Format, FmtPct) {
  EXPECT_EQ(fmt_pct(0.756), "76%");
  EXPECT_EQ(fmt_pct(0.756, 1), "75.6%");
  EXPECT_EQ(fmt_pct(0.0), "0%");
}

TEST(Format, Banner) {
  std::ostringstream out;
  banner(out, "Panel A");
  EXPECT_EQ(out.str(), "\n== Panel A ==\n");
}

}  // namespace
}  // namespace bgpsim::core
