// Unit tests for the distance-vector baseline speaker.
#include "dv/speaker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topo/generators.hpp"

namespace bgpsim::dv {
namespace {

constexpr net::Prefix kP = 0;

struct Sent {
  net::NodeId to;
  DvUpdate update;
  sim::SimTime at;
};

class DvSpeakerTest : public ::testing::Test {
 protected:
  DvSpeakerTest()
      : topo_{topo::make_star(5)}, transport_{sim_, topo_} {
    rebuild(default_config());
  }

  static DvConfig default_config() {
    DvConfig c;
    c.periodic = sim::SimTime::zero();  // triggered-only: sim.run() drains
    c.triggered_delay_lo = sim::SimTime::seconds(1);  // deterministic
    c.triggered_delay_hi = sim::SimTime::seconds(1);
    return c;
  }

  void rebuild(DvConfig config) {
    speaker_.emplace(0, config, sim_, transport_, fib_, sim::Rng{1});
    speaker_->set_peers({1, 2, 3, 4});
    speaker_->set_hooks(DvSpeaker::Hooks{
        .on_update_sent =
            [this](net::NodeId, net::NodeId to, const DvUpdate& u) {
              sent_.push_back(Sent{to, u, sim_.now()});
            },
        .on_route_changed = nullptr,
    });
  }

  /// Metric advertised to `peer` for kP in the most recent update, or
  /// nullopt when omitted.
  std::optional<int> advertised_to(net::NodeId peer) const {
    for (auto it = sent_.rbegin(); it != sent_.rend(); ++it) {
      if (it->to != peer) continue;
      for (const auto& [prefix, metric] : it->update.routes) {
        if (prefix == kP) return metric;
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  sim::Simulator sim_;
  net::Topology topo_;
  net::Transport transport_;
  fwd::Fib fib_;
  std::optional<DvSpeaker> speaker_;
  std::vector<Sent> sent_;
};

TEST_F(DvSpeakerTest, OriginationAdvertisesMetricZero) {
  speaker_->originate(kP);
  EXPECT_EQ(speaker_->metric(kP), 0);
  sim_.run();
  EXPECT_EQ(advertised_to(1), 0);
  EXPECT_EQ(advertised_to(3), 0);
}

TEST_F(DvSpeakerTest, AdoptsBestNeighborMetric) {
  speaker_->handle_update(1, DvUpdate{{{kP, 3}}});
  EXPECT_EQ(speaker_->metric(kP), 4);
  EXPECT_EQ(speaker_->next_hop(kP), 1u);
  speaker_->handle_update(2, DvUpdate{{{kP, 1}}});
  EXPECT_EQ(speaker_->metric(kP), 2);
  EXPECT_EQ(speaker_->next_hop(kP), 2u);
  // A worse offer from a third party is ignored.
  speaker_->handle_update(3, DvUpdate{{{kP, 5}}});
  EXPECT_EQ(speaker_->metric(kP), 2);
  EXPECT_EQ(fib_.next_hop(kP), 2u);
}

TEST_F(DvSpeakerTest, NextHopUpdatesAreAuthoritative) {
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  EXPECT_EQ(speaker_->metric(kP), 2);
  // The current next hop reports a *worse* metric: adopted anyway — the
  // first step of counting to infinity.
  speaker_->handle_update(1, DvUpdate{{{kP, 5}}});
  EXPECT_EQ(speaker_->metric(kP), 6);
  EXPECT_EQ(speaker_->next_hop(kP), 1u);
}

TEST_F(DvSpeakerTest, InfinityFromNextHopInvalidatesRoute) {
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  speaker_->handle_update(1, DvUpdate{{{kP, 16}}});
  EXPECT_FALSE(speaker_->metric(kP).has_value());
  EXPECT_FALSE(fib_.next_hop(kP).has_value());
}

TEST_F(DvSpeakerTest, MetricsClampAtInfinity) {
  speaker_->handle_update(1, DvUpdate{{{kP, 15}}});
  // 15 + 1 == infinity: not a usable route.
  EXPECT_FALSE(speaker_->metric(kP).has_value());
}

TEST_F(DvSpeakerTest, PoisonReverseAdvertisesInfinityToNextHop) {
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  sim_.run();
  EXPECT_EQ(advertised_to(1), 16);  // poisoned back to the next hop
  EXPECT_EQ(advertised_to(2), 2);   // real metric elsewhere
  EXPECT_GT(speaker_->counters().poisoned_advertisements, 0u);
}

TEST_F(DvSpeakerTest, PlainSplitHorizonOmitsRoute) {
  DvConfig c = default_config();
  c.poison_reverse = false;
  rebuild(c);
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  sim_.run();
  EXPECT_FALSE(advertised_to(1).has_value());
  EXPECT_EQ(advertised_to(2), 2);
}

TEST_F(DvSpeakerTest, NoHorizonEchoesRouteBack) {
  DvConfig c = default_config();
  c.split_horizon = false;
  rebuild(c);
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  sim_.run();
  // Without split horizon the route goes back to its next hop — the
  // 2-node counting-to-infinity enabler.
  EXPECT_EQ(advertised_to(1), 2);
}

TEST_F(DvSpeakerTest, TriggeredUpdatesBatch) {
  speaker_->handle_update(1, DvUpdate{{{kP, 4}}});
  speaker_->handle_update(2, DvUpdate{{{kP, 1}}});  // within the window
  sim_.run();
  // One triggered update per peer, carrying only the final state.
  std::size_t to3 = 0;
  for (const auto& s : sent_) {
    if (s.to == 3) ++to3;
  }
  EXPECT_EQ(to3, 1u);
  EXPECT_EQ(advertised_to(3), 2);
  EXPECT_EQ(sent_.front().at, sim::SimTime::seconds(1));
}

TEST_F(DvSpeakerTest, WithdrawOriginPoisonsRoute) {
  speaker_->originate(kP);
  sim_.run();
  sent_.clear();
  speaker_->withdraw_origin(kP);
  EXPECT_FALSE(speaker_->metric(kP).has_value());
  sim_.run();
  EXPECT_EQ(advertised_to(1), 16);  // route poisoning propagates
}

TEST_F(DvSpeakerTest, SessionDownInvalidatesRoutesViaPeer) {
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  speaker_->handle_session(1, false);
  EXPECT_FALSE(speaker_->metric(kP).has_value());
  EXPECT_FALSE(fib_.next_hop(kP).has_value());
}

TEST_F(DvSpeakerTest, OriginIgnoresLearnedRoutes) {
  speaker_->originate(kP);
  speaker_->handle_update(1, DvUpdate{{{kP, 1}}});
  EXPECT_EQ(speaker_->metric(kP), 0);
  EXPECT_FALSE(speaker_->next_hop(kP).has_value());
}

}  // namespace
}  // namespace bgpsim::dv
