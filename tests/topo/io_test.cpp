#include "topo/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "topo/generators.hpp"
#include "topo/internet.hpp"

namespace bgpsim::topo {
namespace {

TEST(TopologyIo, RoundTripClique) {
  const auto original = make_clique(6);
  const auto restored = from_edge_list(to_edge_list(original));
  ASSERT_EQ(restored.node_count(), original.node_count());
  ASSERT_EQ(restored.link_count(), original.link_count());
  for (net::LinkId l = 0; l < original.link_count(); ++l) {
    EXPECT_EQ(restored.link(l).a, original.link(l).a);
    EXPECT_EQ(restored.link(l).b, original.link(l).b);
  }
}

TEST(TopologyIo, RoundTripInternet) {
  const auto original = make_internet_preset(48, 11);
  const auto restored = from_edge_list(to_edge_list(original));
  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.link_count(), original.link_count());
  EXPECT_TRUE(restored.connected());
}

TEST(TopologyIo, HeaderFormat) {
  const auto t = make_chain(3);
  const std::string text = to_edge_list(t);
  EXPECT_EQ(text.substr(0, 4), "3 2\n");
}

TEST(TopologyIo, SkipsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "3 2\n"
      "# another\n"
      "0 1\n"
      "\n"
      "1 2\n";
  const auto t = from_edge_list(text);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_TRUE(t.link_between(0, 1).has_value());
}

TEST(TopologyIo, ThrowsOnMissingHeader) {
  EXPECT_THROW(from_edge_list("# only comments\n"), std::runtime_error);
}

TEST(TopologyIo, ThrowsOnTruncatedLinks) {
  EXPECT_THROW(from_edge_list("3 2\n0 1\n"), std::runtime_error);
}

TEST(TopologyIo, ThrowsOnMalformedLink) {
  EXPECT_THROW(from_edge_list("2 1\n0 x\n"), std::runtime_error);
}

TEST(TopologyIo, ThrowsOnOutOfRangeNode) {
  EXPECT_THROW(from_edge_list("2 1\n0 7\n"), std::invalid_argument);
}

TEST(TopologyIo, ReaderAppliesDefaultDelay) {
  const auto t = from_edge_list("2 1\n0 1\n");
  EXPECT_EQ(t.link(0).delay, kDefaultLinkDelay);
}

}  // namespace
}  // namespace bgpsim::topo
