// CAIDA AS-relationship CSV: parsing, AS-number remap, error paths,
// round-trip.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "net/relationships.hpp"
#include "topo/generators.hpp"
#include "topo/io.hpp"

namespace bgpsim {
namespace {

using net::Relationship;

/// The std::runtime_error message thrown for `text`, "" if nothing threw.
std::string parse_error(const std::string& text) {
  try {
    (void)topo::from_as_relationships(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(AsRelIo, ParsesProviderAndPeerLines) {
  const auto g = topo::from_as_relationships(
      "# comment line\n"
      "\n"
      "1|2|-1\n"
      "2|3|0|bgp\n");  // serial-2 inference-source field is ignored
  ASSERT_EQ(g.topology.node_count(), 3u);
  EXPECT_EQ(g.topology.link_count(), 2u);
  EXPECT_EQ(g.as_numbers, (std::vector<std::uint32_t>{1, 2, 3}));
  // 1|2|-1: AS1 is AS2's provider — from node 0's view, node 1 is a
  // customer; from node 1's view, node 0 is a provider.
  EXPECT_EQ(g.relationships.relationship(0, 1), Relationship::kCustomer);
  EXPECT_EQ(g.relationships.relationship(1, 0), Relationship::kProvider);
  EXPECT_EQ(g.relationships.relationship(1, 2), Relationship::kPeer);
  EXPECT_EQ(g.relationships.relationship(2, 1), Relationship::kPeer);
}

TEST(AsRelIo, RemapsAsNumbersInAscendingOrder) {
  // Node ids are assigned by ascending AS number, independent of line
  // order, so the same file always materializes the same graph.
  const auto g = topo::from_as_relationships(
      "700|100|-1\n"
      "65000|700|0\n");
  EXPECT_EQ(g.as_numbers, (std::vector<std::uint32_t>{100, 700, 65000}));
  // AS700 (node 1) provides for AS100 (node 0).
  EXPECT_EQ(g.relationships.relationship(1, 0), Relationship::kCustomer);
  EXPECT_EQ(g.relationships.relationship(0, 1), Relationship::kProvider);
  EXPECT_EQ(g.relationships.relationship(1, 2), Relationship::kPeer);
}

TEST(AsRelIo, TruncatedLineNamesTheLine) {
  const auto what = parse_error("1|2|-1\n3|4\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(AsRelIo, BadRelationshipCodeNamesTheLine) {
  const auto what = parse_error("1|2|-1\n2|3|1\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(AsRelIo, MalformedAsNumberIsRejected) {
  EXPECT_NE(parse_error("one|2|-1\n"), "");
  EXPECT_NE(parse_error("1|2x|-1\n"), "");
}

TEST(AsRelIo, SelfLoopIsRejected) {
  const auto what = parse_error("1|2|0\n5|5|0\n");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST(AsRelIo, DuplicateAdjacencyIsRejectedEitherOrientation) {
  EXPECT_NE(parse_error("1|2|-1\n1|2|0\n"), "");
  EXPECT_NE(parse_error("1|2|-1\n2|1|-1\n"), "");
}

TEST(AsRelIo, EmptyInputIsRejected) {
  EXPECT_NE(parse_error(""), "");
  EXPECT_NE(parse_error("# nothing but comments\n"), "");
}

TEST(AsRelIo, MissingFileErrorNamesThePath) {
  try {
    (void)topo::load_as_relationships("/nonexistent/as-rel.txt");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/as-rel.txt"),
              std::string::npos);
  }
}

TEST(AsRelIo, RoundTripsAGeneratedGraph) {
  topo::AsGraphParams params;
  params.nodes = 300;
  params.seed = 9;
  const auto g = topo::make_as_graph(params);
  const std::string text =
      topo::to_as_relationships(g.topology, g.relationships);
  const auto back = topo::from_as_relationships(text);
  EXPECT_EQ(back.topology.node_count(), g.topology.node_count());
  EXPECT_EQ(back.topology.link_count(), g.topology.link_count());
  EXPECT_EQ(topo::to_as_relationships(back.topology, back.relationships),
            text);
}

}  // namespace
}  // namespace bgpsim
