#include "topo/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bgpsim::topo {
namespace {

using net::NodeId;

TEST(Clique, SizeAndLinkCount) {
  for (std::size_t n : {2u, 5u, 10u, 30u}) {
    const auto t = make_clique(n);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.link_count(), n * (n - 1) / 2);
    EXPECT_TRUE(t.connected());
  }
}

TEST(Clique, EveryPairAdjacent) {
  const auto t = make_clique(6);
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = 0; b < 6; ++b) {
      if (a != b) EXPECT_TRUE(t.link_between(a, b).has_value());
    }
  }
}

TEST(Clique, UniformDegree) {
  const auto t = make_clique(8);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(t.degree(n), 7u);
}

TEST(Clique, RejectsTooSmall) {
  EXPECT_THROW(make_clique(1), std::invalid_argument);
}

TEST(Chain, Structure) {
  const auto t = make_chain(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(4), 1u);
  EXPECT_EQ(t.degree(2), 2u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.bfs_distances(0)[4], 4u);
}

TEST(Ring, Structure) {
  const auto t = make_ring(6);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_EQ(t.link_count(), 6u);
  for (NodeId n = 0; n < 6; ++n) EXPECT_EQ(t.degree(n), 2u);
  // Opposite node is 3 hops around either way.
  EXPECT_EQ(t.bfs_distances(0)[3], 3u);
}

TEST(Ring, RejectsTooSmall) {
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(Star, Structure) {
  const auto t = make_star(7);
  EXPECT_EQ(t.node_count(), 7u);
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_EQ(t.degree(0), 6u);
  for (NodeId n = 1; n < 7; ++n) EXPECT_EQ(t.degree(n), 1u);
}

TEST(Tree, Structure) {
  const auto t = make_tree(7);  // complete binary tree of height 2
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.degree(0), 2u);   // root
  EXPECT_EQ(t.degree(1), 3u);   // internal
  EXPECT_EQ(t.degree(6), 1u);   // leaf
  EXPECT_EQ(t.bfs_distances(0)[6], 2u);
}

TEST(Grid, Structure) {
  const auto t = make_grid(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  // links = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
  EXPECT_EQ(t.link_count(), 17u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.degree(0), 2u);  // corner
  EXPECT_EQ(t.degree(5), 4u);  // interior (row 1, col 1)
}

TEST(BClique, NodeAndLinkCount) {
  // 2n nodes; links = (n-1) chain + n(n-1)/2 clique + 2 attachments.
  for (std::size_t n : {2u, 5u, 15u}) {
    const auto t = make_bclique(n);
    EXPECT_EQ(t.node_count(), 2 * n);
    EXPECT_EQ(t.link_count(), (n - 1) + n * (n - 1) / 2 + 2);
    EXPECT_TRUE(t.connected());
  }
}

TEST(BClique, Figure3Structure) {
  const std::size_t n = 5;
  const auto t = make_bclique(n);
  // Chain 0-1-2-3-4.
  for (NodeId a = 0; a + 1 < n; ++a) {
    EXPECT_TRUE(t.link_between(a, a + 1).has_value());
  }
  // Clique 5..9.
  for (NodeId a = n; a < 2 * n; ++a) {
    for (NodeId b = a + 1; b < 2 * n; ++b) {
      EXPECT_TRUE(t.link_between(a, b).has_value());
    }
  }
  // Attachments [0,n] and [n-1, 2n-1].
  EXPECT_TRUE(t.link_between(0, 5).has_value());
  EXPECT_TRUE(t.link_between(4, 9).has_value());
  // And no other cross links.
  EXPECT_FALSE(t.link_between(1, 6).has_value());
}

TEST(BClique, TlongLinkIsDirectAttachment) {
  const auto t = make_bclique(5);
  const net::LinkId l = bclique_tlong_link(t, 5);
  EXPECT_TRUE(t.link(l).attaches(0));
  EXPECT_TRUE(t.link(l).attaches(5));
}

TEST(BClique, BackupPathLengthAfterFailure) {
  // After failing [0, n], the clique reaches node 0 only via the chain:
  // distance from node n to 0 becomes 1 (to 2n-1) + 1 (to n-1) + (n-1).
  const std::size_t n = 6;
  auto t = make_bclique(n);
  t.set_link_state(bclique_tlong_link(t, n), false);
  EXPECT_TRUE(t.connected());
  const auto d = t.bfs_distances(static_cast<NodeId>(n));
  EXPECT_EQ(d[0], n + 1);
}

TEST(Generators, DefaultLinkDelayIsTwoMs) {
  const auto t = make_clique(3);
  EXPECT_EQ(t.link(0).delay, sim::SimTime::millis(2));
}

}  // namespace
}  // namespace bgpsim::topo
