// The Internet-scale AS-graph generator: structure, determinism, scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "net/relationships.hpp"
#include "topo/generators.hpp"
#include "topo/io.hpp"

namespace bgpsim {
namespace {

std::vector<std::size_t> degrees(const net::Topology& t) {
  std::vector<std::size_t> deg(t.node_count(), 0);
  for (net::LinkId l = 0; l < t.link_count(); ++l) {
    ++deg[t.link(l).a];
    ++deg[t.link(l).b];
  }
  return deg;
}

bool connected(const net::Topology& t) {
  if (t.node_count() == 0) return true;
  std::vector<std::vector<net::NodeId>> adj(t.node_count());
  for (net::LinkId l = 0; l < t.link_count(); ++l) {
    adj[t.link(l).a].push_back(t.link(l).b);
    adj[t.link(l).b].push_back(t.link(l).a);
  }
  std::vector<bool> seen(t.node_count(), false);
  std::queue<net::NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const net::NodeId u = q.front();
    q.pop();
    for (const net::NodeId v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == t.node_count();
}

TEST(AsGraph, DeterministicInParams) {
  topo::AsGraphParams params;
  params.nodes = 500;
  params.seed = 42;
  const auto a = topo::make_as_graph(params);
  const auto b = topo::make_as_graph(params);
  EXPECT_EQ(topo::to_as_relationships(a.topology, a.relationships),
            topo::to_as_relationships(b.topology, b.relationships));
}

TEST(AsGraph, SeedChangesTheGraph) {
  topo::AsGraphParams params;
  params.nodes = 500;
  params.seed = 1;
  const auto a = topo::make_as_graph(params);
  params.seed = 2;
  const auto b = topo::make_as_graph(params);
  EXPECT_NE(topo::to_as_relationships(a.topology, a.relationships),
            topo::to_as_relationships(b.topology, b.relationships));
}

TEST(AsGraph, ConnectedAtEveryTier) {
  for (const std::size_t n : {16u, 100u, 1000u, 10000u}) {
    topo::AsGraphParams params;
    params.nodes = n;
    params.seed = 3;
    const auto g = topo::make_as_graph(params);
    EXPECT_EQ(g.topology.node_count(), n);
    EXPECT_TRUE(connected(g.topology)) << "nodes=" << n;
  }
}

TEST(AsGraph, EveryAdjacencyIsClassified) {
  topo::AsGraphParams params;
  params.nodes = 1000;
  params.seed = 5;
  const auto g = topo::make_as_graph(params);
  for (net::LinkId l = 0; l < g.topology.link_count(); ++l) {
    const auto& link = g.topology.link(l);
    EXPECT_TRUE(g.relationships.relationship(link.a, link.b).has_value())
        << "link " << link.a << "-" << link.b;
  }
  EXPECT_EQ(g.relationships.size(), g.topology.link_count());
}

TEST(AsGraph, ProviderCustomerDigraphIsAcyclic) {
  // Providers always carry smaller ids than their customers, so the transit
  // digraph is topologically ordered by id — Gao-Rexford convergence is
  // guaranteed by construction.
  topo::AsGraphParams params;
  params.nodes = 2000;
  params.seed = 7;
  const auto g = topo::make_as_graph(params);
  g.relationships.for_each_pair(
      [&](net::NodeId a, net::NodeId b, net::Relationship rel) {
        // rel is what b is to a, and a < b by for_each_pair's contract:
        // the larger id must never be the smaller one's provider.
        EXPECT_NE(rel, net::Relationship::kProvider)
            << "AS " << b << " provides for the smaller id " << a;
      });
}

TEST(AsGraph, DegreeDistributionIsHeavyTailed) {
  // Preferential attachment concentrates customers on a few transit
  // providers: the maximum degree dwarfs the mean, stubs dominate.
  topo::AsGraphParams params;
  params.nodes = 5000;
  params.seed = 11;
  const auto g = topo::make_as_graph(params);
  const auto deg = degrees(g.topology);
  const double mean = 2.0 * static_cast<double>(g.topology.link_count()) /
                      static_cast<double>(g.topology.node_count());
  const std::size_t max_deg = *std::ranges::max_element(deg);
  EXPECT_LT(mean, 6.0);  // sparse, like the real AS graph
  EXPECT_GT(static_cast<double>(max_deg), 20.0 * mean);
  const auto stubs = static_cast<std::size_t>(
      std::ranges::count_if(deg, [](std::size_t d) { return d <= 2; }));
  EXPECT_GT(stubs, g.topology.node_count() / 2);
}

TEST(AsGraph, TooSmallThrows) {
  topo::AsGraphParams params;
  params.nodes = 15;
  EXPECT_THROW((void)topo::make_as_graph(params), std::invalid_argument);
}

}  // namespace
}  // namespace bgpsim
