#include "topo/internet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace bgpsim::topo {
namespace {

using net::NodeId;

TEST(Internet, PresetSizesAreConnected) {
  for (std::size_t n : {29u, 48u, 75u, 110u}) {
    const auto t = make_internet_preset(n, 1);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_TRUE(t.connected()) << "n=" << n;
  }
}

TEST(Internet, DeterministicForSeed) {
  const auto a = make_internet_preset(48, 7);
  const auto b = make_internet_preset(48, 7);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (net::LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
  }
}

TEST(Internet, DifferentSeedsDiffer) {
  const auto a = make_internet_preset(48, 1);
  const auto b = make_internet_preset(48, 2);
  bool differ = a.link_count() != b.link_count();
  if (!differ) {
    for (net::LinkId l = 0; l < a.link_count(); ++l) {
      if (a.link(l).a != b.link(l).a || a.link(l).b != b.link(l).b) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Internet, CoreIsFullMesh) {
  InternetParams p;
  p.nodes = 110;
  p.seed = 3;
  const auto t = make_internet(p);
  const auto core = std::max<std::size_t>(
      3, static_cast<std::size_t>(p.core_fraction * p.nodes + 0.5));
  for (NodeId a = 0; a < core; ++a) {
    for (NodeId b = a + 1; b < core; ++b) {
      EXPECT_TRUE(t.link_between(a, b).has_value())
          << "core " << a << "-" << b;
    }
  }
}

TEST(Internet, StubsHaveLowDegree) {
  const auto t = make_internet_preset(110, 5);
  // The minimum degree must come from the stub range and be small.
  const auto lows = lowest_degree_nodes(t);
  ASSERT_FALSE(lows.empty());
  for (NodeId n : lows) {
    EXPECT_LE(t.degree(n), 2u);
  }
}

TEST(Internet, AverageDegreeIsAsLike) {
  // AS-graph samples have sparse averages; guard the generator against
  // regressing into a dense mesh (which would change convergence shape).
  const auto t = make_internet_preset(110, 1);
  const double avg = 2.0 * static_cast<double>(t.link_count()) /
                     static_cast<double>(t.node_count());
  EXPECT_GE(avg, 1.8);
  EXPECT_LE(avg, 6.0);
}

TEST(Internet, LowestDegreeNodesAllShareMinimum) {
  const auto t = make_internet_preset(48, 9);
  const auto lows = lowest_degree_nodes(t);
  ASSERT_FALSE(lows.empty());
  const std::size_t d = t.degree(lows.front());
  for (NodeId n : lows) EXPECT_EQ(t.degree(n), d);
  // And no node is below it.
  for (NodeId n = 0; n < t.node_count(); ++n) EXPECT_GE(t.degree(n), d);
}

TEST(Internet, RejectsTinyGraphs) {
  InternetParams p;
  p.nodes = 5;
  EXPECT_THROW(make_internet(p), std::invalid_argument);
}

TEST(Internet, RejectsInconsistentFractions) {
  InternetParams p;
  p.nodes = 20;
  p.core_fraction = 0.6;
  p.mid_fraction = 0.6;
  EXPECT_THROW(make_internet(p), std::invalid_argument);
}

TEST(Internet, ManySeedsStayConnected) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto t = make_internet_preset(29, seed);
    EXPECT_TRUE(t.connected()) << "seed " << seed;
  }
}

TEST(Internet, ParameterExtremesStillConnected) {
  InternetParams p;
  p.nodes = 60;
  p.seed = 2;
  p.mid_peer_prob = 0.0;
  p.stub_chain_prob = 0.0;
  EXPECT_TRUE(make_internet(p).connected());
  p.mid_peer_prob = 1.0;
  p.stub_chain_prob = 1.0;
  EXPECT_TRUE(make_internet(p).connected());
}

TEST(Internet, NoChainsMeansStubsHomeToProviders) {
  InternetParams p;
  p.nodes = 60;
  p.seed = 2;
  p.stub_chain_prob = 0.0;
  const auto ann = make_internet_annotated(p);
  const auto core_n = std::max<std::size_t>(
      3, static_cast<std::size_t>(p.core_fraction * p.nodes + 0.5));
  const auto mid_n = static_cast<std::size_t>(p.mid_fraction * p.nodes + 0.5);
  const auto bound = static_cast<NodeId>(core_n + mid_n);
  // Every stub's links lead into the core/mid tiers only.
  for (NodeId stub = bound; stub < p.nodes; ++stub) {
    for (const auto l : ann.topology.links_of(stub)) {
      EXPECT_LT(ann.topology.link(l).other(stub), bound)
          << "stub " << stub;
    }
  }
}

TEST(Internet, AnnotatedAndPlainAgreeForSameSeed) {
  InternetParams p;
  p.nodes = 48;
  p.seed = 13;
  const auto plain = make_internet(p);
  const auto ann = make_internet_annotated(p);
  ASSERT_EQ(plain.link_count(), ann.topology.link_count());
  for (net::LinkId l = 0; l < plain.link_count(); ++l) {
    EXPECT_EQ(plain.link(l).a, ann.topology.link(l).a);
    EXPECT_EQ(plain.link(l).b, ann.topology.link(l).b);
  }
}

}  // namespace
}  // namespace bgpsim::topo
