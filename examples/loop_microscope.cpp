// loop_microscope: per-loop statistics — the paper's stated "next steps"
// ("measure the statistics of individual loops such as the loop size and
// duration"), implemented on top of the LoopDetector extension.
//
//   $ ./build/examples/loop_microscope [topo] [size] [mrai]
//     topo: clique | bclique | internet      (default clique)
//
// Prints a histogram of loop sizes, duration percentiles per size, and the
// per-hop normalized duration against the paper's (m-1) x MRAI bound.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "metrics/stats.hpp"

int main(int argc, char** argv) {
  using namespace bgpsim;

  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 12;
  s.event = core::EventKind::kTdown;
  s.seed = 31;
  if (argc > 1) {
    if (std::strcmp(argv[1], "bclique") == 0) {
      s.topology.kind = core::TopologyKind::kBClique;
      s.event = core::EventKind::kTlong;
    } else if (std::strcmp(argv[1], "internet") == 0) {
      s.topology.kind = core::TopologyKind::kInternet;
      s.topology.size = 48;
    }
  }
  if (argc > 2) s.topology.size = std::strtoul(argv[2], nullptr, 10);
  const double mrai = argc > 3 ? std::strtod(argv[3], nullptr) : 30.0;
  s.bgp.mrai = sim::SimTime::seconds(mrai);
  s.topology.topo_seed = s.seed;

  std::printf("loop microscope: %s, MRAI=%.0fs\n\n", s.label().c_str(), mrai);
  const auto out = core::run_experiment(s);
  const auto& loops = out.metrics.loops;
  std::printf("event at %.1fs; convergence %.1fs; %zu distinct loops\n\n",
              out.metrics.event_at.as_seconds(),
              out.metrics.convergence_time_s, loops.size());
  if (loops.empty()) {
    std::printf("no transient loops this run — try a larger size/seed.\n");
    return 0;
  }

  // Per-size analysis (metrics::analyze_loops is also available in
  // out.metrics.loop_stats; recomputed here to show the API).
  const metrics::LoopStats stats =
      metrics::analyze_loops(loops, out.metrics.last_update_at);
  std::printf(
      "two-node loops: %.0f%% of all loops; loop-active time %.1fs; up to "
      "%zu loops concurrently\n\n",
      stats.two_node_fraction * 100.0, stats.active_time_s,
      stats.max_concurrent);

  core::Table table{{"loop size m", "count", "median dur (s)", "max dur (s)",
                     "max/(m-1) (s)", "(m-1)*M bound (s)"}};
  for (const auto& bucket : stats.by_size) {
    table.add_row(
        {std::to_string(bucket.size), std::to_string(bucket.count),
         core::fmt(bucket.duration_s.median, 2),
         core::fmt(bucket.duration_s.max, 2),
         core::fmt(bucket.worst_per_hop_s, 2),
         core::fmt(static_cast<double>(bucket.size - 1) * mrai, 0)});
  }
  table.print(std::cout);

  // The longest-lived loops in detail.
  std::printf("\nlongest-lived loops:\n");
  std::vector<const metrics::LoopRecord*> sorted;
  for (const auto& loop : loops) sorted.push_back(&loop);
  std::sort(sorted.begin(), sorted.end(), [&](const auto* a, const auto* b) {
    return a->duration_seconds(out.metrics.last_update_at) >
           b->duration_seconds(out.metrics.last_update_at);
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
    const auto& r = *sorted[i];
    std::printf("  %5.1fs  {", r.duration_seconds(out.metrics.last_update_at));
    for (std::size_t k = 0; k < r.members.size(); ++k) {
      std::printf("%s%u", k ? " " : "", r.members[k]);
    }
    std::printf("}  formed at %.1fs\n", r.formed_at.as_seconds());
  }
  return 0;
}
