// enhancement_comparison: runs the same scenario under all five protocol
// variants side by side — the paper's §5 comparison in one command.
//
//   $ ./build/examples/enhancement_comparison [internet_size] [tdown|tlong]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace bgpsim;

  const std::size_t size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const bool tlong = argc > 2 && std::strcmp(argv[2], "tlong") == 0;
  const std::size_t trials = core::env_or("BGPSIM_TRIALS", 2);

  core::Scenario base;
  base.topology.kind = core::TopologyKind::kInternet;
  base.topology.size = size;
  base.topology.topo_seed = 5;
  base.event = tlong ? core::EventKind::kTlong : core::EventKind::kTdown;
  base.seed = 5;

  std::printf("comparing enhancements on Internet-%zu %s (%zu trials each)\n\n",
              size, tlong ? "Tlong" : "Tdown", trials);

  core::Table table{{"protocol", "convergence (s)", "looping duration (s)",
                     "TTL exhaustions", "looping ratio", "updates sent"}};
  for (const auto e : bgp::kAllEnhancements) {
    core::Scenario s = base;
    s.bgp = s.bgp.with(e);
    const auto set =
        core::run_trials(s, core::RunOptions{.trials = trials, .jobs = 1});
    double updates = 0;
    for (const auto& r : set.runs) {
      updates += static_cast<double>(r.metrics.updates_sent);
    }
    table.add_row({to_string(e), metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s),
                   core::fmt(set.ttl_exhaustions.mean, 0),
                   core::fmt_pct(set.looping_ratio.mean, 1),
                   core::fmt(updates / static_cast<double>(set.runs.size()),
                             0)});
  }
  table.print(std::cout);

  std::printf(
      "\nreading guide (paper §5): Assertion and Ghost Flushing should cut\n"
      "both convergence and looping; SSLD helps modestly; WRATE is the\n"
      "mixed bag (it trades fewer messages for stale ghost state).\n");
  return 0;
}
