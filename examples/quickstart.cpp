// Quickstart: run one Tdown scenario on a 10-node Clique and print the
// paper's four metrics.
//
//   $ ./build/examples/quickstart [clique_size] [mrai_seconds]
//
// This is the smallest complete use of the public API: describe a Scenario,
// call run_experiment, read RunMetrics.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace bgpsim;

  const std::size_t size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const double mrai = argc > 2 ? std::strtod(argv[2], nullptr) : 30.0;

  core::Scenario scenario;
  scenario.topology.kind = core::TopologyKind::kClique;
  scenario.topology.size = size;
  scenario.event = core::EventKind::kTdown;
  scenario.bgp.mrai = sim::SimTime::seconds(mrai);
  scenario.seed = 42;

  std::printf("bgpsim quickstart: %s, MRAI=%.0fs\n", scenario.label().c_str(),
              mrai);

  const core::ExperimentOutcome out = core::run_experiment(scenario);
  const metrics::RunMetrics& m = out.metrics;

  std::printf("\n  destination AS           : %u\n", out.destination);
  std::printf("  initial convergence      : %.1f s\n",
              out.initial_convergence_s);
  std::printf("\n  -- the paper's four metrics (Section 4.2) --\n");
  std::printf("  convergence time         : %.1f s\n", m.convergence_time_s);
  std::printf("  overall looping duration : %.1f s\n", m.looping_duration_s);
  std::printf("  TTL exhaustions          : %llu\n",
              static_cast<unsigned long long>(m.ttl_exhaustions));
  std::printf("  looping ratio            : %.1f %%\n",
              m.looping_ratio * 100.0);
  std::printf("\n  -- supporting detail --\n");
  std::printf("  packets sent (convergence window): %llu\n",
              static_cast<unsigned long long>(
                  m.packets_sent_during_convergence));
  std::printf("  updates sent after event : %llu (%llu withdrawals total)\n",
              static_cast<unsigned long long>(m.updates_sent),
              static_cast<unsigned long long>(m.bgp.withdrawals_sent));
  std::printf("  distinct loops formed    : %llu (max size %zu, max %.1f s)\n",
              static_cast<unsigned long long>(m.loops_formed),
              m.max_loop_size, m.max_loop_duration_s);
  return 0;
}
