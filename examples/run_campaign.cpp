// run_campaign: distributed campaign execution over the src/svc/ service.
//
//   $ run_campaign --topo clique --sizes 5,10,15 --event tdown \
//                  --trials 8 --workers 4
//
// Decomposes a sweep (one scenario per --sizes entry, or a single
// --size scenario) into (scenario, trial-range) work units and runs them
// across worker *processes* — spawned locally over socketpairs (default),
// spawned locally but attached over loopback TCP (--tcp), or attached
// from outside (--listen PORT + `bgpsim_worker --connect`). The merged
// aggregate is bit-identical to the in-process `run_trials_parallel` at
// any worker count; --check-serial re-runs the campaign in-process and
// verifies exactly that by content digest (the svc_smoke CTest entry).
//
// Flags:
//   --file SCENARIO          load base scenario from a scenario file
//   --topo/--size/--event/--proto/--mrai/--seed/--policy
//                            as in run_scenario
//   --sizes A,B,C            sweep: one scenario per size (overrides --size)
//   --trials K               trials per scenario (default 4)
//   --unit-trials U          trials per work unit (default 1)
//   --workers N              worker processes (default: BGPSIM_WORKERS,
//                            else BGPSIM_JOBS, else all cores)
//   --deadline-s D           per-unit deadline; a worker that exceeds it is
//                            killed and its unit requeued (default: off)
//   --tcp                    spawn workers that attach over loopback TCP
//   --listen PORT            serve PORT and wait for N external workers
//   --worker-bin PATH        bgpsim_worker binary (default: sibling of
//                            this binary)
//   --fork                   spawn by fork() without exec (self-contained)
//   --journal PATH           write a write-ahead journal while running, so
//                            a killed campaign resumes with --resume PATH
//                            (bare names resolve under BGPSIM_JOURNAL_DIR)
//   --resume PATH            resume a journaled campaign: completed units
//                            are restored from the journal, only units in
//                            flight at the crash re-run, and the digest is
//                            bit-identical to an uninterrupted run
//   --check-serial           verify the campaign digest against the
//                            in-process runner; non-zero exit on mismatch
//   --verbose                info-level service logging
//
// A campaign whose units fail permanently (a worker reports a
// deterministic per-unit error, or a unit exhausts its attempt cap on
// dying workers) exits non-zero after printing one line per failed unit.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli.hpp"
#include "core/env.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "metrics/stats.hpp"
#include "sim/logging.hpp"
#include "svc/coordinator.hpp"
#include "svc/transport.hpp"
#include "svc/units.hpp"
#include "svcd/daemon.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s %s [--sizes A,B,C] [--trials K] [--unit-trials U] "
      "[--workers N] [--deadline-s D] [--tcp] [--listen PORT] "
      "[--worker-bin PATH] [--fork] [--journal PATH] [--resume PATH] "
      "[--check-serial] [--verbose]\n",
      argv0, bgpsim::cli::kScenarioUsage);
  std::exit(2);
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0) {
      std::fprintf(stderr, "run_campaign: bad --sizes entry '%s'\n",
                   tok.c_str());
      std::exit(2);
    }
    sizes.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

/// Resolve a journal path: bare file names (no '/') land under
/// BGPSIM_JOURNAL_DIR when that knob is set.
std::string resolve_journal_path(const std::string& path) {
  if (path.find('/') != std::string::npos) return path;
  const char* dir = bgpsim::core::env::journal_dir();
  return dir == nullptr ? path : std::string{dir} + "/" + path;
}

/// Satellite of the failure contract: a campaign with permanently failed
/// units prints the headline plus one line per failed unit and exits 1.
void print_campaign_failure(const bgpsim::svc::CampaignError& e) {
  // what() is multi-line (headline + one line per failure); keep only the
  // headline here so the per-unit lines below are not printed twice.
  const std::string what = e.what();
  const std::size_t nl = what.find('\n');
  std::fprintf(stderr, "run_campaign: %s\n",
               what.substr(0, nl == std::string::npos ? what.size() : nl)
                   .c_str());
  for (const bgpsim::svc::UnitFailure& f : e.failures()) {
    std::fprintf(stderr, "run_campaign:   %s\n", f.to_string().c_str());
  }
}

/// Locate the bgpsim_worker binary next to this executable.
std::string default_worker_bin(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  std::string self = n > 0 ? std::string{buf, static_cast<std::size_t>(n)}
                           : std::string{argv0};
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/bgpsim_worker";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  core::Scenario base;
  base.topology.kind = core::TopologyKind::kClique;
  base.topology.size = 8;
  std::vector<std::size_t> sizes;
  std::size_t trials = 4;
  std::size_t unit_trials = 1;
  std::size_t workers = 0;  // 0: BGPSIM_WORKERS, else BGPSIM_JOBS, else cores
  double deadline_s = 0;
  bool use_tcp = false;
  bool use_fork = false;
  bool check_serial = false;
  int listen_port = -1;
  std::string worker_bin;
  std::string journal_path;
  std::string resume_path;

  cli::Args args{argc, argv, usage};
  while (args.next()) {
    if (cli::apply_scenario_flag(args, base)) continue;
    const std::string& arg = args.arg();
    if (arg == "--sizes") {
      sizes = parse_sizes(args.value());
    } else if (arg == "--trials") {
      trials = args.value_size();
    } else if (arg == "--unit-trials") {
      unit_trials = args.value_size();
    } else if (arg == "--workers") {
      workers = args.value_size();
    } else if (arg == "--deadline-s") {
      deadline_s = args.value_double();
    } else if (arg == "--tcp") {
      use_tcp = true;
    } else if (arg == "--listen") {
      listen_port = static_cast<int>(args.value_size());
    } else if (arg == "--worker-bin") {
      worker_bin = args.value();
    } else if (arg == "--fork") {
      use_fork = true;
    } else if (arg == "--journal") {
      journal_path = args.value();
    } else if (arg == "--resume") {
      resume_path = args.value();
    } else if (arg == "--check-serial") {
      check_serial = true;
    } else if (arg == "--verbose") {
      sim::Log::set_level(sim::LogLevel::kInfo);
    } else {
      args.fail();
    }
  }

  if (workers == 0) workers = core::env::workers();
  if (worker_bin.empty()) worker_bin = default_worker_bin(argv[0]);
  if (!journal_path.empty() && !resume_path.empty()) {
    std::fprintf(stderr,
                 "run_campaign: --journal and --resume are mutually "
                 "exclusive\n");
    return 2;
  }
  if ((!journal_path.empty() || !resume_path.empty()) &&
      (use_tcp || listen_port >= 0)) {
    std::fprintf(stderr,
                 "run_campaign: journaled campaigns run over fork workers "
                 "(--journal/--resume exclude --tcp/--listen)\n");
    return 2;
  }

  // Resume path: the spec (scenarios, trials, unit split) comes from the
  // journal, not the command line; completed units are restored and only
  // the remainder re-runs. The digest contract is machine-checked by
  // tests/svcd; here we just print the merged result.
  if (!resume_path.empty()) {
    svcd::JournaledRunOptions jopts;
    jopts.workers = workers;
    jopts.deadline_s = deadline_s;
    try {
      const svc::CampaignResult result =
          svcd::resume_journaled_campaign(resolve_journal_path(resume_path),
                                          jopts);
      std::printf("campaign digest: %016llx  (resumed; units=%zu "
                  "requeues=%zu)\n",
                  static_cast<unsigned long long>(result.digest),
                  result.units_dispatched, result.requeues);
      return 0;
    } catch (const svc::CampaignError& e) {
      print_campaign_failure(e);
      return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "run_campaign: %s\n", e.what());
      return 1;
    }
  }

  svc::CampaignSpec spec;
  spec.run.trials = trials;
  spec.unit_trials = unit_trials;
  if (sizes.empty()) {
    spec.scenarios.push_back(base);
  } else {
    for (const std::size_t n : sizes) {
      core::Scenario s = base;
      s.topology.size = n;
      spec.scenarios.push_back(s);
    }
  }

  svc::CampaignOptions options;
  options.deadline_s = deadline_s;

  std::printf("campaign: %zu scenario(s) x %zu trial(s), unit=%zu trial(s), "
              "%zu worker(s), transport=%s\n",
              spec.scenarios.size(), trials, unit_trials == 0 ? 1 : unit_trials,
              workers,
              !journal_path.empty() ? "fork+journal"
              : listen_port >= 0    ? "listen"
              : use_tcp             ? "tcp"
                                    : "socketpair");

  svc::CampaignResult result;
  try {
    if (!journal_path.empty()) {
      svcd::JournaledRunOptions jopts;
      jopts.workers = workers;
      jopts.deadline_s = deadline_s;
      result = svcd::run_journaled_campaign(
          spec, resolve_journal_path(journal_path), jopts);
    } else {
      svc::Coordinator coordinator{spec, options};
      if (listen_port >= 0) {
        auto listener = svc::TcpListener::bind_localhost(
            static_cast<std::uint16_t>(listen_port));
        std::printf("listening on 127.0.0.1:%u — start %zu x "
                    "`bgpsim_worker --connect 127.0.0.1:%u`\n",
                    listener.port(), workers, listener.port());
        std::fflush(stdout);
        for (std::size_t i = 0; i < workers; ++i) {
          svc::Connection conn = listener.accept_one(-1);
          coordinator.add_worker(std::move(conn), -1, -1);
        }
      } else if (use_tcp) {
        auto listener = svc::TcpListener::bind_localhost(0);
        std::vector<pid_t> pids;
        pids.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
          pids.push_back(
              coordinator.spawn_exec_worker_tcp(worker_bin, listener.port()));
        }
        for (std::size_t i = 0; i < workers; ++i) {
          svc::Connection conn = listener.accept_one(30'000);
          if (!conn.valid()) {
            std::fprintf(
                stderr, "run_campaign: worker failed to connect within 30 s\n");
            return 1;
          }
          // The accept order need not match the spawn order; the Hello frame
          // says which worker this is, and its pid enables deadline kills.
          std::optional<svc::Frame> hello_frame = conn.recv_frame();
          if (!hello_frame || hello_frame->type != svc::FrameType::kHello) {
            std::fprintf(stderr, "run_campaign: worker handshake failed\n");
            return 1;
          }
          const svc::Hello hello = svc::decode_hello(*hello_frame);
          const pid_t pid =
              hello.worker_id < pids.size()
                  ? pids[static_cast<std::size_t>(hello.worker_id)]
                  : -1;
          coordinator.add_worker(std::move(conn), pid, -1);
        }
      } else if (use_fork) {
        for (std::size_t i = 0; i < workers; ++i) {
          coordinator.spawn_fork_worker();
        }
      } else {
        for (std::size_t i = 0; i < workers; ++i) {
          coordinator.spawn_exec_worker(worker_bin);
        }
      }
      result = coordinator.run();
    }
  } catch (const svc::CampaignError& e) {
    print_campaign_failure(e);
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_campaign: %s\n", e.what());
    return 1;
  }

  for (std::size_t si = 0; si < result.sets.size(); ++si) {
    const core::TrialSet& set = result.sets[si];
    std::printf("%-28s conv=%s s  loopdur=%s s  ratio=%.1f%%  digest=%016llx\n",
                set.scenario.label().c_str(),
                metrics::mean_pm(set.convergence_time_s).c_str(),
                metrics::mean_pm(set.looping_duration_s).c_str(),
                set.looping_ratio.mean * 100.0,
                static_cast<unsigned long long>(svc::trialset_digest(set)));
  }
  std::printf("campaign digest: %016llx  (units=%zu requeues=%zu "
              "workers_lost=%zu)\n",
              static_cast<unsigned long long>(result.digest),
              result.units_dispatched, result.requeues, result.workers_lost);

  if (check_serial) {
    std::vector<core::TrialSet> serial;
    serial.reserve(spec.scenarios.size());
    for (const core::Scenario& s : spec.scenarios) {
      serial.push_back(core::run_trials(s, spec.run));
    }
    const std::uint64_t serial_digest = svc::campaign_digest(serial);
    const bool ok = serial_digest == result.digest;
    std::printf("[%s] campaign digest %s in-process run_trials_parallel "
                "digest %016llx\n",
                ok ? "PASS" : "FAIL", ok ? "matches" : "DIFFERS FROM",
                static_cast<unsigned long long>(serial_digest));
    if (!ok) return 1;
  }
  return 0;
}
