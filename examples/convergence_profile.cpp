// convergence_profile: ASCII activity profile of a convergence event —
// update transmissions and TTL exhaustions per second. The MRAI's
// batching shows up as periodic update bursts roughly one (jittered) MRAI
// apart, with packet looping filling the gaps.
//
//   $ ./build/examples/convergence_profile [clique_size] [mrai]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace {

/// Render counts as a row of height glyphs, one per bin.
std::string sparkline(const std::vector<std::uint64_t>& bins) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  const std::uint64_t peak = bins.empty()
                                 ? 0
                                 : *std::max_element(bins.begin(), bins.end());
  std::string out;
  for (const auto v : bins) {
    const std::size_t idx =
        peak == 0 ? 0 : 1 + (v * 7 + peak - 1) / peak - (v == 0 ? 1 : 0);
    out += levels[std::min<std::size_t>(idx, 8)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  s.event = core::EventKind::kTdown;
  s.bgp.mrai = sim::SimTime::seconds(
      argc > 2 ? std::strtod(argv[2], nullptr) : 30.0);
  s.seed = 7;

  std::printf("convergence profile: %s, MRAI=%.0fs\n\n", s.label().c_str(),
              s.bgp.mrai.as_seconds());
  const auto out = core::run_experiment(s);
  const auto& m = out.metrics;

  std::printf("convergence %.1fs, looping %.1fs, %llu exhaustions "
              "(ratio %.0f%%)\n\n",
              m.convergence_time_s, m.looping_duration_s,
              static_cast<unsigned long long>(m.ttl_exhaustions),
              m.looping_ratio * 100);

  // Compress to at most 100 columns.
  const auto compress = [](const std::vector<std::uint64_t>& bins,
                           std::size_t cols) {
    if (bins.size() <= cols) return bins;
    std::vector<std::uint64_t> out(cols, 0);
    for (std::size_t i = 0; i < bins.size(); ++i) {
      out[i * cols / bins.size()] += bins[i];
    }
    return out;
  };
  const auto upd = compress(m.update_activity_1s, 100);
  const auto exh = compress(m.exhaustion_activity_1s, 100);
  const double secs_per_col =
      m.update_activity_1s.empty()
          ? 1.0
          : static_cast<double>(m.update_activity_1s.size()) /
                static_cast<double>(upd.size());

  std::printf("updates/s    |%s|\n", sparkline(upd).c_str());
  std::printf("exhaustions  |%s|\n", sparkline(exh).c_str());
  std::printf("             event%*s\n", static_cast<int>(upd.size()),
              "last update");
  std::printf("(%.1f s per column; MRAI rounds appear as periodic update "
              "bursts)\n",
              secs_per_col);
  return 0;
}
