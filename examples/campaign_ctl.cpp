// campaign_ctl: line client for the bgpsimd admin socket.
//
//   $ campaign_ctl --admin /tmp/bgpsimd.sock STATUS
//   $ campaign_ctl SUBMIT 'trials=8; topology=clique; size=10; event=tdown'
//   $ campaign_ctl CANCEL 3
//
// Joins its positional arguments into one command line, sends it over the
// unix socket, and prints the response. The response's final line starts
// with "OK" (exit 0) or "ERR" (exit 1); everything before it (the STATUS
// worker/campaign listing) is passed through verbatim.
//
// The socket path comes from --admin, else BGPSIM_ADMIN_SOCK.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/env.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--admin SOCKET] STATUS\n"
               "       %s [--admin SOCKET] SUBMIT 'trials=K; key=value; ...'\n"
               "       %s [--admin SOCKET] CANCEL ID\n",
               argv0, argv0, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string sock_path;
  std::string command;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--admin") {
      if (i + 1 >= argc) usage(argv[0]);
      sock_path = argv[++i];
    } else {
      if (!command.empty()) command += ' ';
      command += arg;
    }
  }
  if (command.empty()) usage(argv[0]);
  if (sock_path.empty()) {
    const char* env = bgpsim::core::env::admin_sock();
    if (env == nullptr) {
      std::fprintf(stderr,
                   "campaign_ctl: no admin socket — give --admin or set "
                   "BGPSIM_ADMIN_SOCK\n");
      return 2;
    }
    sock_path = env;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (sock_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "campaign_ctl: socket path too long: %s\n",
                 sock_path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
          0) {
    std::fprintf(stderr, "campaign_ctl: cannot connect to %s: %s\n",
                 sock_path.c_str(), std::strerror(errno));
    if (fd >= 0) ::close(fd);
    return 1;
  }

  command += '\n';
  std::size_t off = 0;
  while (off < command.size()) {
    const ssize_t n =
        ::send(fd, command.data() + off, command.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      std::fprintf(stderr, "campaign_ctl: send failed: %s\n",
                   std::strerror(errno));
      ::close(fd);
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }

  // Read until the terminating OK/ERR line (or EOF if the daemon died).
  std::string response;
  int rc = 1;
  for (;;) {
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
    std::size_t line_start = 0;
    bool done = false;
    for (std::size_t nl = response.find('\n', line_start);
         nl != std::string::npos; nl = response.find('\n', line_start)) {
      const std::string line = response.substr(line_start, nl - line_start);
      line_start = nl + 1;
      if (line.rfind("OK", 0) == 0) { rc = 0; done = true; }
      if (line.rfind("ERR", 0) == 0) { rc = 1; done = true; }
    }
    if (done) break;
  }
  ::close(fd);
  std::fputs(response.c_str(), stdout);
  if (rc != 0 && response.empty()) {
    std::fprintf(stderr, "campaign_ctl: no response (daemon gone?)\n");
  }
  return rc;
}
