// bgpsim_worker: campaign worker process for the src/svc/ service.
//
//   $ bgpsim_worker [--fd N] [--connect HOST:PORT] [--id K] [--verbose]
//
// Serves svc frames over an inherited file descriptor (default fd 0 — the
// coordinator passes one end of a socketpair as stdin) or over a TCP
// connection to a coordinator's localhost listener. Normally spawned by
// run_campaign or svc::Coordinator rather than by hand; running it
// standalone only makes sense against `run_campaign --listen`.
//
// Exit code 0 on clean shutdown (kShutdown frame or coordinator EOF),
// 1 on protocol/transport errors, 2 on bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "sim/logging.hpp"
#include "svc/transport.hpp"
#include "svc/worker.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fd N] [--connect HOST:PORT] [--id K] "
               "[--verbose]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  int fd = 0;
  std::uint64_t id = 0;
  std::string connect_addr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--fd") {
      fd = std::atoi(value());
    } else if (arg == "--connect") {
      connect_addr = value();
    } else if (arg == "--id") {
      id = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--verbose") {
      sim::Log::set_level(sim::LogLevel::kDebug);
    } else {
      usage(argv[0]);
    }
  }

  try {
    svc::Connection conn;
    if (!connect_addr.empty()) {
      // Coordinators listen on the loopback interface only; accept
      // "127.0.0.1:PORT", "localhost:PORT", or a bare port.
      const auto colon = connect_addr.rfind(':');
      const std::string host =
          colon == std::string::npos ? "" : connect_addr.substr(0, colon);
      if (!host.empty() && host != "127.0.0.1" && host != "localhost") {
        std::fprintf(stderr,
                     "bgpsim_worker: --connect supports localhost only "
                     "(got %s)\n",
                     host.c_str());
        return 2;
      }
      const std::string port_str =
          colon == std::string::npos ? connect_addr
                                     : connect_addr.substr(colon + 1);
      const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
      if (port == 0 || port > 65535) usage(argv[0]);
      conn = svc::connect_localhost(static_cast<std::uint16_t>(port));
    } else {
      conn = svc::Connection{fd};
    }
    return svc::worker_loop(std::move(conn), id);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpsim_worker: %s\n", e.what());
    return 1;
  }
}
