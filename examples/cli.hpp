// Shared flag parsing for the example CLIs.
//
// Every example binary used to carry its own copy of the same argv loop:
// a `value()` helper that exits through usage() when a flag's operand is
// missing, plus an if/else chain over the scenario-shaping flags. Args is
// that loop as a cursor, and apply_scenario_flag() is the shared chain —
// a CLI handles its own flags first (or asks apply_scenario_flag to try)
// and calls fail() for anything left over.
//
//   cli::Args args{argc, argv, usage};
//   while (args.next()) {
//     if (cli::apply_scenario_flag(args, scenario)) continue;
//     if (args.arg() == "--trials") trials = args.value_size();
//     else args.fail();
//   }
//
// Numeric operands are parsed strictly: trailing garbage ("10x") exits
// through usage() instead of being silently truncated.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/scenario.hpp"
#include "core/scenario_file.hpp"
#include "sim/time.hpp"

namespace bgpsim::cli {

/// Cursor over argv. next() advances to each flag in turn; value() and
/// the typed variants consume the flag's operand. Malformed input exits
/// the process through the usage handler, which must not return (it
/// should print and std::exit(2)).
class Args {
 public:
  using UsageFn = void (*)(const char* argv0);

  Args(int argc, char** argv, UsageFn usage)
      : argc_(argc), argv_(argv), usage_(usage) {}

  /// Advance to the next flag. False once argv is exhausted.
  bool next() {
    if (i_ + 1 >= argc_) return false;
    arg_ = argv_[++i_];
    return true;
  }

  /// The flag next() stopped on.
  [[nodiscard]] const std::string& arg() const { return arg_; }

  /// Consume the current flag's operand; exits via usage if missing.
  const char* value() {
    if (i_ + 1 >= argc_) fail();
    return argv_[++i_];
  }

  /// The next token without consuming it; nullptr at the end of argv.
  /// For flags with an *optional* operand (bgpsimd --listen [PORT]).
  [[nodiscard]] const char* peek() const {
    return i_ + 1 >= argc_ ? nullptr : argv_[i_ + 1];
  }

  /// value() parsed as a non-negative integer; exits on garbage.
  std::size_t value_size() {
    return static_cast<std::size_t>(value_u64());
  }

  std::uint64_t value_u64() {
    const char* v = value();
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') fail();
    return parsed;
  }

  double value_double() {
    const char* v = value();
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0') fail();
    return parsed;
  }

  /// Exit through the usage handler (unknown flag, bad operand).
  [[noreturn]] void fail() const {
    usage_(argv_[0]);
    std::abort();  // unreachable: the usage handler exits
  }

 private:
  int argc_;
  char** argv_;
  UsageFn usage_;
  int i_ = 0;
  std::string arg_;
};

/// The scenario-shaping flags shared by run_scenario and run_campaign,
/// for splicing into a usage string.
inline constexpr const char* kScenarioUsage =
    "[--file SCENARIO] "
    "[--topo clique|bclique|chain|ring|internet|asgraph|relfile] "
    "[--size N] [--rel-file PATH] [--event tdown|tlong|tup|flap] "
    "[--proto bgp|ssld|wrate|assertion|ghost] [--mrai SECONDS] [--seed S] "
    "[--policy] [--prefixes P]";

/// Try the current flag against the shared scenario flags; true when it
/// was one of them (operand consumed, `s` updated). --file replaces the
/// whole scenario, so it must precede any flag it should not override.
/// --seed seeds both the trial RNG and the topology generator, matching
/// every CLI's historical behavior.
inline bool apply_scenario_flag(Args& a, core::Scenario& s) {
  const std::string& arg = a.arg();
  if (arg == "--file") {
    s = core::load_scenario_file(a.value());
  } else if (arg == "--topo") {
    const std::string v = a.value();
    if (v == "clique") s.topology.kind = core::TopologyKind::kClique;
    else if (v == "bclique") s.topology.kind = core::TopologyKind::kBClique;
    else if (v == "chain") s.topology.kind = core::TopologyKind::kChain;
    else if (v == "ring") s.topology.kind = core::TopologyKind::kRing;
    else if (v == "internet") s.topology.kind = core::TopologyKind::kInternet;
    else if (v == "asgraph") s.topology.kind = core::TopologyKind::kAsGraph;
    else if (v == "relfile") s.topology.kind = core::TopologyKind::kRelFile;
    else a.fail();
  } else if (arg == "--size") {
    s.topology.size = a.value_size();
  } else if (arg == "--rel-file") {
    s.topology.kind = core::TopologyKind::kRelFile;
    s.topology.rel_file = a.value();
  } else if (arg == "--event") {
    const std::string v = a.value();
    if (v == "tdown") s.event = core::EventKind::kTdown;
    else if (v == "tlong") s.event = core::EventKind::kTlong;
    else if (v == "tup") s.event = core::EventKind::kTup;
    else if (v == "flap") s.event = core::EventKind::kFlap;
    else a.fail();
  } else if (arg == "--proto") {
    const std::string v = a.value();
    if (v == "bgp") s.bgp = s.bgp.with(bgp::Enhancement::kStandard);
    else if (v == "ssld") s.bgp = s.bgp.with(bgp::Enhancement::kSsld);
    else if (v == "wrate") s.bgp = s.bgp.with(bgp::Enhancement::kWrate);
    else if (v == "assertion") s.bgp = s.bgp.with(bgp::Enhancement::kAssertion);
    else if (v == "ghost") s.bgp = s.bgp.with(bgp::Enhancement::kGhostFlushing);
    else a.fail();
  } else if (arg == "--mrai") {
    s.bgp.mrai = sim::SimTime::seconds(a.value_double());
  } else if (arg == "--seed") {
    s.seed = a.value_u64();
    s.topology.topo_seed = s.seed;
  } else if (arg == "--policy") {
    s.policy_routing = true;
  } else if (arg == "--prefixes") {
    s.prefixes = a.value_size();
    if (s.prefixes == 0) a.fail();
  } else {
    return false;
  }
  return true;
}

}  // namespace bgpsim::cli
