// run_scenario: a small CLI over the experiment harness.
//
//   $ run_scenario --topo clique|bclique|chain|ring|internet --size N
//                  --event tdown|tlong|tup|flap
//                  --proto bgp|ssld|wrate|assertion|ghost
//                  --mrai SECONDS --seed S [--trials K] [--jobs J] [--policy]
//                  [--trace FILE.jsonl] [--save-state FILE]
//                  [--load-state FILE] [--verbose]
//
// Prints the paper's metrics for each trial plus the aggregate. Trials run
// across --jobs worker threads (default: BGPSIM_JOBS, else all cores) with
// results identical to a serial run. With --trace, writes the route-change
// trace as JSON lines (forces serial execution: one shared trace sink).
//
// --save-state writes the converged pre-event checkpoint of the run to
// FILE; --load-state warm-starts from such a checkpoint, skipping cold
// convergence (the scenario flags must reproduce the saved run's prelude —
// mismatches are rejected with a precise error). Both force trials=1: a
// state file captures exactly one run.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "cli.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"
#include "sim/logging.hpp"
#include "snap/snapshot.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s %s [--trials K] [--jobs J] [--trace FILE] "
               "[--save-state FILE] [--load-state FILE] [--verbose]\n",
               argv0, bgpsim::cli::kScenarioUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 10;
  std::size_t trials = 1;
  std::size_t jobs = 0;  // 0: BGPSIM_JOBS env var, else hardware_concurrency
  std::string trace_path;
  std::string save_state_path;
  std::string load_state_path;

  cli::Args args{argc, argv, usage};
  while (args.next()) {
    if (cli::apply_scenario_flag(args, s)) continue;
    const std::string& arg = args.arg();
    if (arg == "--trials") {
      trials = args.value_size();
    } else if (arg == "--jobs") {
      jobs = args.value_size();
    } else if (arg == "--trace") {
      trace_path = args.value();
    } else if (arg == "--save-state") {
      save_state_path = args.value();
    } else if (arg == "--load-state") {
      load_state_path = args.value();
    } else if (arg == "--verbose") {
      sim::Log::set_level(sim::LogLevel::kDebug);
    } else {
      args.fail();
    }
  }

  // A state file describes exactly one run; fan-out would either race on
  // the save target or warm-start every trial from trial 0's state.
  if ((!save_state_path.empty() || !load_state_path.empty()) && trials != 1) {
    std::fprintf(stderr,
                 "run_scenario: --save-state/--load-state force trials=1 "
                 "(was %zu)\n",
                 trials);
    trials = 1;
  }

  snap::Snapshot loaded;
  if (!load_state_path.empty()) {
    try {
      loaded = snap::Snapshot::load_file(load_state_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "run_scenario: cannot load %s: %s\n",
                   load_state_path.c_str(), e.what());
      return 1;
    }
    s.warm_start = &loaded;
    std::printf("state: warm-starting from %s (%zu bytes, t=%.1fs)\n",
                load_state_path.c_str(), loaded.size_bytes(),
                loaded.meta().sim_time.as_seconds());
  }
  snap::Snapshot saved;
  if (!save_state_path.empty()) s.save_converged = &saved;

  std::printf("scenario: %s, MRAI=%.0fs, trials=%zu\n", s.label().c_str(),
              s.bgp.mrai.as_seconds(), trials);

  metrics::TraceRecorder trace;
  if (!trace_path.empty()) s.trace = &trace;

  core::TrialSet set;
  try {
    set = core::run_trials(s, core::RunOptions{.trials = trials, .jobs = jobs});
  } catch (const std::invalid_argument& e) {
    // A stale or mismatched --load-state file is a user error, not a crash:
    // the snapshot's driver/topology/config/seed meta must match the flags.
    std::fprintf(stderr, "run_scenario: %s\n", e.what());
    return 1;
  }

  if (!save_state_path.empty()) {
    saved.save_file(save_state_path);
    std::printf("state: converged checkpoint (%zu bytes, t=%.1fs) -> %s\n",
                saved.size_bytes(), saved.meta().sim_time.as_seconds(),
                save_state_path.c_str());
  }

  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    trace.write_jsonl(out);
    std::printf("trace: %zu events across %zu trials -> %s\n", trace.size(),
                trials, trace_path.c_str());
  }
  for (std::size_t i = 0; i < set.runs.size(); ++i) {
    const auto& m = set.runs[i].metrics;
    std::printf(
        "  trial %zu: dest=%u conv=%.1fs loopdur=%.1fs exh=%llu ratio=%.1f%% "
        "loops=%llu upd=%llu wd=%llu\n",
        i, set.runs[i].destination, m.convergence_time_s,
        m.looping_duration_s,
        static_cast<unsigned long long>(m.ttl_exhaustions),
        m.looping_ratio * 100.0,
        static_cast<unsigned long long>(m.loops_formed),
        static_cast<unsigned long long>(m.updates_sent),
        static_cast<unsigned long long>(m.bgp.withdrawals_sent));
    for (std::size_t p = 0; p < m.per_prefix.size(); ++p) {
      const auto& lane = m.per_prefix[p];
      std::printf(
          "    prefix %zu: loops=%llu maxloop=%.1fs exh=%llu sent=%llu "
          "delivered=%llu\n",
          p, static_cast<unsigned long long>(lane.loops_formed),
          lane.max_loop_duration_s,
          static_cast<unsigned long long>(lane.ttl_exhaustions),
          static_cast<unsigned long long>(lane.packets_sent),
          static_cast<unsigned long long>(lane.packets_delivered));
    }
  }
  std::printf("aggregate: conv=%s s, loopdur=%s s, ratio=%.1f ±%.1f %%\n",
              metrics::mean_pm(set.convergence_time_s).c_str(),
              metrics::mean_pm(set.looping_duration_s).c_str(),
              set.looping_ratio.mean * 100.0, set.looping_ratio.stddev * 100.0);
  return 0;
}
