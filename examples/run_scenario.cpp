// run_scenario: a small CLI over the experiment harness.
//
//   $ run_scenario --topo clique|bclique|chain|ring|internet --size N
//                  --event tdown|tlong|tup|flap
//                  --proto bgp|ssld|wrate|assertion|ghost
//                  --mrai SECONDS --seed S [--trials K] [--jobs J] [--policy]
//                  [--trace FILE.jsonl] [--save-state FILE]
//                  [--load-state FILE] [--verbose]
//
// Prints the paper's metrics for each trial plus the aggregate. Trials run
// across --jobs worker threads (default: BGPSIM_JOBS, else all cores) with
// results identical to a serial run. With --trace, writes the route-change
// trace as JSON lines (forces serial execution: one shared trace sink).
//
// --save-state writes the converged pre-event checkpoint of the run to
// FILE; --load-state warm-starts from such a checkpoint, skipping cold
// convergence (the scenario flags must reproduce the saved run's prelude —
// mismatches are rejected with a precise error). Both force trials=1: a
// state file captures exactly one run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/scenario.hpp"
#include "core/scenario_file.hpp"
#include "core/sweep.hpp"
#include "metrics/stats.hpp"
#include "metrics/trace.hpp"
#include "sim/logging.hpp"
#include "snap/snapshot.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--file SCENARIO] "
               "[--topo clique|bclique|chain|ring|internet] "
               "[--size N] [--event tdown|tlong|tup|flap] "
               "[--proto bgp|ssld|wrate|assertion|ghost] [--mrai SECONDS] "
               "[--seed S] [--trials K] [--jobs J] [--policy] [--trace FILE] "
               "[--save-state FILE] [--load-state FILE] [--verbose]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = 10;
  std::size_t trials = 1;
  std::size_t jobs = 0;  // 0: BGPSIM_JOBS env var, else hardware_concurrency
  std::string trace_path;
  std::string save_state_path;
  std::string load_state_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--file") {
      // Load everything from a scenario file; later flags may override.
      s = core::load_scenario_file(value());
    } else if (arg == "--topo") {
      const std::string v = value();
      if (v == "clique") s.topology.kind = core::TopologyKind::kClique;
      else if (v == "bclique") s.topology.kind = core::TopologyKind::kBClique;
      else if (v == "chain") s.topology.kind = core::TopologyKind::kChain;
      else if (v == "ring") s.topology.kind = core::TopologyKind::kRing;
      else if (v == "internet") s.topology.kind = core::TopologyKind::kInternet;
      else usage(argv[0]);
    } else if (arg == "--size") {
      s.topology.size = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--event") {
      const std::string v = value();
      if (v == "tdown") s.event = core::EventKind::kTdown;
      else if (v == "tlong") s.event = core::EventKind::kTlong;
      else if (v == "tup") s.event = core::EventKind::kTup;
      else if (v == "flap") s.event = core::EventKind::kFlap;
      else usage(argv[0]);
    } else if (arg == "--proto") {
      const std::string v = value();
      if (v == "bgp") s.bgp = s.bgp.with(bgp::Enhancement::kStandard);
      else if (v == "ssld") s.bgp = s.bgp.with(bgp::Enhancement::kSsld);
      else if (v == "wrate") s.bgp = s.bgp.with(bgp::Enhancement::kWrate);
      else if (v == "assertion") s.bgp = s.bgp.with(bgp::Enhancement::kAssertion);
      else if (v == "ghost") s.bgp = s.bgp.with(bgp::Enhancement::kGhostFlushing);
      else usage(argv[0]);
    } else if (arg == "--mrai") {
      s.bgp.mrai = sim::SimTime::seconds(std::strtod(value(), nullptr));
    } else if (arg == "--seed") {
      s.seed = std::strtoull(value(), nullptr, 10);
      s.topology.topo_seed = s.seed;
    } else if (arg == "--trials") {
      trials = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--policy") {
      s.policy_routing = true;
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--save-state") {
      save_state_path = value();
    } else if (arg == "--load-state") {
      load_state_path = value();
    } else if (arg == "--verbose") {
      sim::Log::set_level(sim::LogLevel::kDebug);
    } else {
      usage(argv[0]);
    }
  }

  // A state file describes exactly one run; fan-out would either race on
  // the save target or warm-start every trial from trial 0's state.
  if ((!save_state_path.empty() || !load_state_path.empty()) && trials != 1) {
    std::fprintf(stderr,
                 "run_scenario: --save-state/--load-state force trials=1 "
                 "(was %zu)\n",
                 trials);
    trials = 1;
  }

  snap::Snapshot loaded;
  if (!load_state_path.empty()) {
    try {
      loaded = snap::Snapshot::load_file(load_state_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "run_scenario: cannot load %s: %s\n",
                   load_state_path.c_str(), e.what());
      return 1;
    }
    s.warm_start = &loaded;
    std::printf("state: warm-starting from %s (%zu bytes, t=%.1fs)\n",
                load_state_path.c_str(), loaded.size_bytes(),
                loaded.meta().sim_time.as_seconds());
  }
  snap::Snapshot saved;
  if (!save_state_path.empty()) s.save_converged = &saved;

  std::printf("scenario: %s, MRAI=%.0fs, trials=%zu\n", s.label().c_str(),
              s.bgp.mrai.as_seconds(), trials);

  metrics::TraceRecorder trace;
  if (!trace_path.empty()) s.trace = &trace;

  core::TrialSet set;
  try {
    set = core::run_trials_parallel(s, trials, jobs);
  } catch (const std::invalid_argument& e) {
    // A stale or mismatched --load-state file is a user error, not a crash:
    // the snapshot's driver/topology/config/seed meta must match the flags.
    std::fprintf(stderr, "run_scenario: %s\n", e.what());
    return 1;
  }

  if (!save_state_path.empty()) {
    saved.save_file(save_state_path);
    std::printf("state: converged checkpoint (%zu bytes, t=%.1fs) -> %s\n",
                saved.size_bytes(), saved.meta().sim_time.as_seconds(),
                save_state_path.c_str());
  }

  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    trace.write_jsonl(out);
    std::printf("trace: %zu events across %zu trials -> %s\n", trace.size(),
                trials, trace_path.c_str());
  }
  for (std::size_t i = 0; i < set.runs.size(); ++i) {
    const auto& m = set.runs[i].metrics;
    std::printf(
        "  trial %zu: dest=%u conv=%.1fs loopdur=%.1fs exh=%llu ratio=%.1f%% "
        "loops=%llu upd=%llu wd=%llu\n",
        i, set.runs[i].destination, m.convergence_time_s,
        m.looping_duration_s,
        static_cast<unsigned long long>(m.ttl_exhaustions),
        m.looping_ratio * 100.0,
        static_cast<unsigned long long>(m.loops_formed),
        static_cast<unsigned long long>(m.updates_sent),
        static_cast<unsigned long long>(m.bgp.withdrawals_sent));
  }
  std::printf("aggregate: conv=%s s, loopdur=%s s, ratio=%.1f ±%.1f %%\n",
              metrics::mean_pm(set.convergence_time_s).c_str(),
              metrics::mean_pm(set.looping_duration_s).c_str(),
              set.looping_ratio.mean * 100.0, set.looping_ratio.stddev * 100.0);
  return 0;
}
