// topo_tool: generate, inspect, and export the study's topology families.
//
//   $ topo_tool gen clique 15                  # edge list to stdout
//   $ topo_tool gen internet 110 --seed 3 --rel
//   $ topo_tool info internet 110 --seed 3     # degree stats, diameter
//
// The edge-list format round-trips through topo::read_edge_list, so graphs
// can be archived and replayed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "net/relationships.hpp"
#include "topo/generators.hpp"
#include "topo/internet.hpp"
#include "topo/io.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: topo_tool gen|info "
               "clique|chain|ring|star|tree|bclique|internet SIZE "
               "[--seed S] [--rel]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;
  if (argc < 4) usage();

  const std::string mode = argv[1];
  const std::string family = argv[2];
  const std::size_t size = std::strtoul(argv[3], nullptr, 10);
  std::uint64_t seed = 1;
  bool with_rel = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rel") == 0) {
      with_rel = true;
    } else {
      usage();
    }
  }

  net::Topology topo;
  net::RelationshipTable rel;
  if (family == "clique") topo = topo::make_clique(size);
  else if (family == "chain") topo = topo::make_chain(size);
  else if (family == "ring") topo = topo::make_ring(size);
  else if (family == "star") topo = topo::make_star(size);
  else if (family == "tree") topo = topo::make_tree(size);
  else if (family == "bclique") topo = topo::make_bclique(size);
  else if (family == "internet") {
    topo::InternetParams params;
    params.nodes = size;
    params.seed = seed;
    auto ann = topo::make_internet_annotated(params);
    topo = std::move(ann.topology);
    rel = std::move(ann.relationships);
  } else {
    usage();
  }

  if (mode == "gen") {
    std::printf("# bgpsim %s-%zu (seed %llu)\n", family.c_str(), size,
                static_cast<unsigned long long>(seed));
    topo::write_edge_list(std::cout, topo);
    if (with_rel && !rel.empty()) {
      std::printf("# relationships (a b kind; kind = what b is to a)\n");
      for (net::LinkId l = 0; l < topo.link_count(); ++l) {
        const auto& link = topo.link(l);
        if (const auto r = rel.relationship(link.a, link.b)) {
          std::printf("# %u %u %s\n", link.a, link.b, to_string(*r));
        }
      }
    }
    return 0;
  }

  if (mode != "info") usage();

  std::printf("%s\n", topo.summary().c_str());
  std::size_t min_deg = topo.node_count(), max_deg = 0, total_deg = 0;
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    min_deg = std::min(min_deg, topo.degree(n));
    max_deg = std::max(max_deg, topo.degree(n));
    total_deg += topo.degree(n);
  }
  std::printf("degree: min %zu, max %zu, avg %.2f\n", min_deg, max_deg,
              static_cast<double>(total_deg) /
                  static_cast<double>(topo.node_count()));
  // Diameter and mean eccentricity via all-sources BFS.
  std::size_t diameter = 0;
  double ecc_sum = 0;
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    const auto dist = topo.bfs_distances(n);
    std::size_t ecc = 0;
    for (const auto d : dist) {
      if (d != std::numeric_limits<std::size_t>::max()) {
        ecc = std::max(ecc, d);
      }
    }
    diameter = std::max(diameter, ecc);
    ecc_sum += static_cast<double>(ecc);
  }
  std::printf("diameter: %zu, mean eccentricity %.2f, connected: %s\n",
              diameter, ecc_sum / static_cast<double>(topo.node_count()),
              topo.connected() ? "yes" : "no");
  std::printf("lowest-degree nodes (destination candidates): ");
  for (const auto n : topo::lowest_degree_nodes(topo)) std::printf("%u ", n);
  std::printf("\n");
  return 0;
}
