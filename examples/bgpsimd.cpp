// bgpsimd: the always-on campaign daemon (svcd::Daemon as a binary).
//
//   $ bgpsimd --journal /tmp/c.jnl --admin /tmp/bgpsimd.sock --listen 0 &
//   $ campaign_ctl SUBMIT 'trials=8; topology=clique; size=10; event=tdown'
//   $ bgpsim_worker --connect 127.0.0.1:<port from STATUS>
//
// The daemon queues campaigns submitted over the admin socket, journals
// every state transition (kill -9 it, restart with --resume, and the
// surviving campaigns continue where they left off with a bit-identical
// digest), streams one bgpsim-bench-1 JSON line per completed unit to
// --results, and tolerates workers joining over TCP mid-campaign and
// dying at any time.
//
// Flags:
//   --journal PATH      write-ahead journal for this daemon's campaigns
//                       (bare names resolve under BGPSIM_JOURNAL_DIR)
//   --resume PATH       resume from an existing journal instead
//   --admin PATH        unix admin socket (STATUS / SUBMIT / CANCEL);
//                       default: BGPSIM_ADMIN_SOCK
//   --listen [PORT]     accept TCP workers (default port 0 = ephemeral;
//                       the bound port is printed and shown by STATUS)
//   --workers N         fork N local workers at startup (default 0)
//   --results PATH      streaming JSON sink (default: stdout)
//   --deadline-s D      per-unit lease; slow holders are failed (default off)
//   --max-attempts K    per-unit attempt cap (default 3)
//   --exit-when-idle    one-shot mode: exit once the queue drains
//   --verbose           info-level service logging
//
// SIGINT/SIGTERM stop the daemon gracefully (workers shut down, journal
// synced); SIGKILL is what --resume is for.
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "cli.hpp"
#include "core/env.hpp"
#include "sim/logging.hpp"
#include "svcd/daemon.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--journal PATH | --resume PATH] [--admin PATH] "
               "[--listen [PORT]] [--workers N] [--results PATH] "
               "[--deadline-s D] [--max-attempts K] [--exit-when-idle] "
               "[--verbose]\n",
               argv0);
  std::exit(2);
}

std::string resolve_journal_path(const std::string& path) {
  if (path.find('/') != std::string::npos) return path;
  const char* dir = bgpsim::core::env::journal_dir();
  return dir == nullptr ? path : std::string{dir} + "/" + path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  svcd::DaemonOptions options;
  options.handle_signals = true;
  options.results = stdout;
  std::size_t fork_workers = 0;
  std::string results_path;

  cli::Args args{argc, argv, usage};
  while (args.next()) {
    const std::string& arg = args.arg();
    if (arg == "--journal") {
      options.journal_path = resolve_journal_path(args.value());
    } else if (arg == "--resume") {
      options.resume_path = resolve_journal_path(args.value());
    } else if (arg == "--admin") {
      options.admin_socket = args.value();
    } else if (arg == "--listen") {
      options.tcp_listen = true;
      // PORT is optional: `--listen 9000` binds 9000, bare `--listen`
      // (next token a flag or nothing) binds an ephemeral port.
      if (args.peek() != nullptr && args.peek()[0] != '-') {
        options.tcp_port = static_cast<std::uint16_t>(args.value_size());
      }
    } else if (arg == "--workers") {
      fork_workers = args.value_size();
    } else if (arg == "--results") {
      results_path = args.value();
    } else if (arg == "--deadline-s") {
      options.deadline_s = args.value_double();
    } else if (arg == "--max-attempts") {
      options.max_attempts = args.value_size();
    } else if (arg == "--exit-when-idle") {
      options.exit_when_idle = true;
    } else if (arg == "--verbose") {
      sim::Log::set_level(sim::LogLevel::kInfo);
    } else {
      args.fail();
    }
  }

  if (options.admin_socket.empty()) {
    const char* sock = core::env::admin_sock();
    if (sock != nullptr) options.admin_socket = sock;
  }
  if (options.admin_socket.empty() && !options.tcp_listen &&
      fork_workers == 0) {
    std::fprintf(stderr,
                 "bgpsimd: nothing to do — give --admin (or set "
                 "BGPSIM_ADMIN_SOCK), --listen, or --workers\n");
    return 2;
  }

  std::FILE* results_file = nullptr;
  if (!results_path.empty()) {
    results_file = std::fopen(results_path.c_str(), "w");
    if (results_file == nullptr) {
      std::fprintf(stderr, "bgpsimd: cannot open --results %s: %s\n",
                   results_path.c_str(), std::strerror(errno));
      return 1;
    }
    options.results = results_file;
  }

  int rc = 0;
  try {
    svcd::Daemon daemon{std::move(options)};
    for (std::size_t i = 0; i < fork_workers; ++i) daemon.spawn_fork_worker();
    std::fprintf(stderr, "bgpsimd: pid=%d%s%s%s\n",
                 static_cast<int>(::getpid()),
                 daemon.tcp_port() != 0
                     ? (" port=" + std::to_string(daemon.tcp_port())).c_str()
                     : "",
                 fork_workers != 0
                     ? (" workers=" + std::to_string(fork_workers)).c_str()
                     : "",
                 " ready");
    std::fflush(stderr);
    daemon.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpsimd: %s\n", e.what());
    rc = 1;
  }
  if (results_file != nullptr) std::fclose(results_file);
  return rc;
}
