// Deterministic scenario fuzzer: random topologies, events, and protocol
// settings, every run checked by the full invariant oracle.
//
//   fuzz_scenarios [--iters N] [--seed S] [--verbose] [--snap-check]
//                  [--wheel-check] [--dataplane-check] [--multiprefix]
//   fuzz_scenarios --replay SCENARIO_SEED [--snap-check] [--wheel-check]
//                  [--dataplane-check] [--multiprefix]
//   fuzz_scenarios --canary [...]     # arm a deliberately wrong invariant
//                                     # to demonstrate the failure path
//
// --snap-check runs every iteration twice — with and without a seed-derived
// mid-run snapshot save/restore/re-save round-trip — and fails (with a
// --replay line) if the round-trip changes the outcome fingerprint.
//
// --wheel-check re-runs every clean iteration under the opposite event
// scheduler (timer wheel vs binary heap, BGPSIM_TIMER_WHEEL) and fails if
// the fingerprints differ; a clean campaign prints the same digest as a
// plain run.
//
// --dataplane-check does the same for the data-plane hop store (per-tick
// FIFO rings vs binary heap, BGPSIM_DATAPLANE_RINGS): every clean
// iteration re-runs under the opposite backend and must fingerprint
// identically.
//
// --multiprefix additionally draws a prefix count from {2, 4, 8, 16} (and
// sometimes scattered origins) per scenario, fuzzing the SoA RIB and
// batched decision paths; composes with --snap-check / --wheel-check.
//
// BGPSIM_FUZZ_ITERS overrides the default iteration count (100).
// Exit status: 0 = every iteration clean, 1 = failures (replay lines
// printed), 2 = bad usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "cli.hpp"
#include "core/env.hpp"
#include "core/fuzz.hpp"

namespace {

using namespace bgpsim;

/// A deliberately inverted poison-reverse check: it reports every path
/// that does NOT contain the adopter — i.e. every correct adoption. Any
/// fuzz iteration that installs a route must trip it, which exercises the
/// whole failure-reporting / --replay pipeline end to end.
class CanaryInvariant final : public check::Invariant {
 public:
  [[nodiscard]] std::string_view name() const override { return "canary"; }
  void on_route_installed(net::NodeId node, net::Prefix,
                          const std::optional<bgp::AsPath>& best,
                          sim::SimTime at) override {
    if (!best) return;
    std::size_t self_hops = 0;
    for (net::NodeId hop : best->hops()) self_hops += hop == node ? 1 : 0;
    if (self_hops <= 1) {
      report(at, node, "canary (inverted poison reverse): adopted path " +
                           best->to_string() + " lacks a second " +
                           std::to_string(node));
    }
  }
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iters N] [--seed S] [--replay SCENARIO_SEED] "
               "[--verbose] [--canary] [--snap-check] [--wheel-check] "
               "[--dataplane-check] [--multiprefix]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::FuzzOptions options;
  options.iters = core::env::fuzz_iters(100);
  options.out = &std::cout;
  std::optional<std::uint64_t> replay;
  bool canary = false;

  cli::Args args{argc, argv, usage};
  while (args.next()) {
    const std::string& arg = args.arg();
    if (arg == "--iters") {
      options.iters = args.value_size();
    } else if (arg == "--seed") {
      options.seed = args.value_u64();
    } else if (arg == "--replay") {
      replay = args.value_u64();
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--canary") {
      canary = true;
    } else if (arg == "--snap-check") {
      options.snap_check = true;
    } else if (arg == "--wheel-check") {
      options.wheel_check = true;
    } else if (arg == "--dataplane-check") {
      options.dataplane_check = true;
    } else if (arg == "--multiprefix") {
      options.multiprefix = true;
    } else {
      args.fail();
    }
  }

  if (canary) {
    options.make_oracle = [] {
      check::Oracle oracle = check::Oracle::standard();
      oracle.add(std::make_unique<CanaryInvariant>());
      return oracle;
    };
  }

  if (replay) {
    const auto failure = core::replay_fuzz_scenario(*replay, options);
    return failure ? 1 : 0;
  }

  const core::FuzzReport report = core::run_fuzz(options);
  std::printf("fuzz: %zu iteration(s), %zu failure(s), digest %016llx\n",
              report.iterations, report.failures.size(),
              static_cast<unsigned long long>(report.digest));
  return report.ok() ? 0 : 1;
}
