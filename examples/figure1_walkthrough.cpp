// figure1_walkthrough: replays the paper's Figure 1 scenario with a live
// protocol event trace, so you can watch the transient 5<->6 loop form and
// resolve.
//
//   $ ./build/examples/figure1_walkthrough
//
// Topology (Figure 1): destination behind node 0; node 4 directly attached;
// 5 and 6 hang off 4 and each other; 6 also has the long backup via 3-2-1.
// The event: link [4 0] fails.
#include <cstdio>
#include <optional>

#include "bgp/network.hpp"
#include "metrics/loop_detector.hpp"
#include "topo/generators.hpp"

int main() {
  using namespace bgpsim;
  constexpr net::Prefix kP = 0;

  net::Topology topo{7};
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  topo.add_link(3, 6);
  topo.add_link(0, 4);
  topo.add_link(4, 5);
  topo.add_link(4, 6);
  topo.add_link(5, 6);

  sim::Simulator simulator;
  bgp::BgpConfig config;  // MRAI 30 s with jitter, as in the study
  bgp::BgpNetwork network{simulator, topo, config,
                          net::ProcessingDelay{},  // U[0.1 s, 0.5 s]
                          sim::Rng{7}};

  metrics::LoopDetector detector{topo.node_count()};
  detector.attach(simulator, network.fibs(), kP);

  // Narrate every best-path change and every loop event.
  network.set_hooks(bgp::Speaker::Hooks{
      .on_update_sent = nullptr,
      .on_best_changed =
          [&](net::NodeId node, net::Prefix,
              const std::optional<bgp::AsPath>& best) {
            std::printf("%9.3fs  node %u best path -> %s\n",
                        simulator.now().as_seconds(), node,
                        best ? best->to_string().c_str() : "(unreachable)");
            for (const auto& loop : detector.active_loops()) {
              std::printf("%9.3fs      ** forwarding loop active: {",
                          simulator.now().as_seconds());
              for (std::size_t i = 0; i < loop.size(); ++i) {
                std::printf("%s%u", i ? " " : "", loop[i]);
              }
              std::printf("}\n");
            }
          },
  });

  std::printf("== initial convergence (Figure 1(a)) ==\n");
  simulator.schedule_at(sim::SimTime::zero(),
                        [&] { network.originate(0, kP); });
  simulator.run();

  std::printf("\nconverged state:\n");
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    const bgp::AsPath* loc = network.speaker(n).loc_rib().get(kP);
    std::printf("  node %u: %s\n", n,
                loc ? loc->to_string().c_str() : "(unreachable)");
  }

  std::printf("\n== link [4 0] fails (Figure 1(b)) ==\n");
  const auto link40 = topo.link_between(4, 0);
  simulator.schedule_at(simulator.now() + sim::SimTime::seconds(5), [&] {
    std::printf("%9.3fs  !! link [4 0] fails\n", simulator.now().as_seconds());
    network.inject_link_failure(*link40);
  });
  simulator.run();
  detector.finalize(simulator.now());

  std::printf("\n== resolution (Figure 1(c)) ==\n");
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    const bgp::AsPath* loc = network.speaker(n).loc_rib().get(kP);
    std::printf("  node %u: %s\n", n,
                loc ? loc->to_string().c_str() : "(unreachable)");
  }

  std::printf("\ntransient loops observed after the failure:\n");
  for (const auto& r : detector.records()) {
    std::printf("  {");
    for (std::size_t i = 0; i < r.members.size(); ++i) {
      std::printf("%s%u", i ? " " : "", r.members[i]);
    }
    std::printf("}  formed %.3fs, lasted %.3fs\n", r.formed_at.as_seconds(),
                r.duration_seconds(simulator.now()));
  }
  if (detector.records().empty()) {
    std::printf("  (none this run — jitter-dependent; try another seed)\n");
  }
  return 0;
}
