// Figure 4(c): overall looping duration and convergence time on the
// Internet-derived topologies {29, 48, 75, 110}, Tdown, MRAI 30 s.
//
// Paper expectation: looping persists essentially throughout convergence
// (gap of only a few seconds), larger networks converge more slowly; the
// 110-node headline is a ~527 s convergence.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 4(c)", "Tdown in Internet-derived topologies");

  std::vector<std::size_t> sizes{29, 48, 75};
  if (full_run()) sizes.push_back(110);
  const std::size_t n_trials = trials(2);

  core::Table table{{"nodes", "convergence (s)", "looping duration (s)",
                     "gap (s)", "looping ratio"}};
  std::vector<double> conv, loop;
  double max_gap = 0;
  for (const std::size_t n : sizes) {
    const auto set = run_point(core::TopologyKind::kInternet, n,
                               core::EventKind::kTdown,
                               bgp::Enhancement::kStandard, 30.0, n_trials,
                               /*seed=*/3);
    const double gap = set.convergence_time_s.mean - set.looping_duration_s.mean;
    max_gap = std::max(max_gap, gap);
    conv.push_back(set.convergence_time_s.mean);
    loop.push_back(set.looping_duration_s.mean);
    table.add_row({std::to_string(n),
                   metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s), core::fmt(gap, 1),
                   core::fmt_pct(set.looping_ratio.mean)});
  }
  table.print(std::cout);
  emit_table(table, "Figure 4(c): Tdown in Internet-derived topologies");

  std::printf("\nshape checks vs the paper:\n");
  check(max_gap < 15.0,
        "looping persists essentially throughout Tdown convergence");
  check(conv.back() > 100.0,
        "large Internet-derived topologies take minutes to converge");
  return 0;
}
