// Headline: full-table loop exposure — transient looping when the routing
// table carries 1..4096 prefixes instead of the paper's single destination.
//
// The paper studies one prefix at a time; real routers converge a whole
// table at once, so a correlated event (the destination AS failing) makes
// every affected prefix's correction queue behind every other prefix's
// churn. This bench sweeps the prefix count over clique, Internet-
// abstraction, and policy-routed AS-graph topologies and reports loop
// metrics per table size, plus the wall-clock payoff of the SoA RIB's
// batched decision processing versus running the same prefixes as
// independent single-prefix experiments.
//
// Prefix counts sweep {1, 4, 16, 64, 256} (1024 and 4096 under
// BGPSIM_FULL=1), truncated to BGPSIM_PREFIXES; the AS-graph series stops
// at 64 prefixes unless BGPSIM_FULL=1 (policy graphs are ~10x slower per
// prefix, and the scaling story is already told by the smaller points).
//
// Expected: loop counts grow with the table size (each affected prefix
// loops independently, so exposure is roughly linear in P), per-prefix
// loop durations stay in the single-prefix band, and the batched run beats
// P repeated single-prefix runs by well over 2x at the 256-prefix point —
// the shared topology, shared prelude convergence, and columnar RIB do the
// work once instead of P times.
#include "common.hpp"

#include <chrono>
#include <cstdint>

namespace {

using namespace bgpsim;

/// Background origins scattered around the graph: prefix 0 stays at the
/// event destination, prefixes 1..P-1 cycle over these.
std::vector<net::NodeId> spread_origins(std::size_t nodes) {
  return {static_cast<net::NodeId>(1),
          static_cast<net::NodeId>(nodes / 4),
          static_cast<net::NodeId>(nodes / 2),
          static_cast<net::NodeId>((3 * nodes) / 4)};
}

core::Scenario table_point(core::TopologyKind kind, std::size_t size,
                           std::size_t prefixes, bool policy = false) {
  core::Scenario s;
  s.topology.kind = kind;
  s.topology.size = size;
  s.topology.topo_seed = 1;
  s.event = core::EventKind::kTdown;
  s.policy_routing = policy;
  s.seed = 1;
  s.prefixes = prefixes;
  if (prefixes > 1) s.origins = spread_origins(size);
  return s;
}

/// Per-prefix lane totals of one trial set (loops and exhaustions summed
/// over every lane and trial; 0/0 lanes on a single-prefix run).
struct LaneTotals {
  std::uint64_t loops = 0;
  std::uint64_t exhaustions = 0;
  double max_loop_s = 0;
};

LaneTotals lane_totals(const core::TrialSet& set) {
  LaneTotals t;
  for (const auto& run : set.runs) {
    for (const auto& lane : run.metrics.per_prefix) {
      t.loops += lane.loops_formed;
      t.exhaustions += lane.ttl_exhaustions;
      if (lane.max_loop_duration_s > t.max_loop_s) {
        t.max_loop_s = lane.max_loop_duration_s;
      }
    }
  }
  return t;
}

double wall_ms(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Headline: full-table loop exposure",
               "loop metrics and batched-decision payoff vs prefix count");

  std::vector<std::size_t> counts{1, 4, 16, 64, 256};
  if (full_run()) {
    counts.push_back(1024);
    counts.push_back(4096);
  }
  const std::size_t cap = core::env::prefixes_cap();
  std::erase_if(counts, [cap](std::size_t p) { return p > cap; });
  const std::size_t n_trials = trials(2);

  struct Family {
    const char* name;
    core::TopologyKind kind;
    std::size_t size;
    bool policy;
    std::size_t count_cap;  // AS graphs stop early outside BGPSIM_FULL
  };
  const std::size_t graph_cap = full_run() ? counts.back() : 64;
  const std::vector<Family> families{
      {"clique-10", core::TopologyKind::kClique, 10, false, counts.back()},
      {"internet-110", core::TopologyKind::kInternet, 110, false,
       counts.back()},
      {"asgraph-1000", core::TopologyKind::kAsGraph, 1000, true, graph_cap},
  };

  // ---- loop metrics vs prefix count, one table per topology family ------
  for (const Family& family : families) {
    core::Table t{{"prefixes", "loops formed", "looping duration (s)",
                   "max lane loop (s)", "lane TTL exhaustions",
                   "convergence (s)", "wall (ms)"}};
    for (const std::size_t p : counts) {
      if (p > family.count_cap) {
        std::printf("  (%s: stopping at %zu prefixes; BGPSIM_FULL=1 for "
                    "the full sweep)\n",
                    family.name, family.count_cap);
        break;
      }
      const auto start = std::chrono::steady_clock::now();
      const core::TrialSet set =
          core::run_trials(table_point(family.kind, family.size, p,
                                       family.policy),
                           core::RunOptions{.trials = n_trials});
      const double ms = wall_ms(start);
      const LaneTotals lanes = lane_totals(set);
      t.add_row({std::to_string(p), core::fmt(set.loops_formed.mean, 1),
                 metrics::mean_pm(set.looping_duration_s),
                 core::fmt(lanes.max_loop_s, 2),
                 std::to_string(lanes.exhaustions),
                 metrics::mean_pm(set.convergence_time_s),
                 core::fmt(ms, 0)});
    }
    std::printf("\n%s (Tdown at the prefix-0 origin):\n", family.name);
    t.print(std::cout);
    emit_table(t, std::string{"Full-table loop exposure: "} + family.name);
  }

  // ---- batched vs repeated single-prefix, internet-110 ------------------
  // The same table processed two ways: one batched multi-prefix run versus
  // P independent single-prefix experiments (each origin measured alone).
  // Loop *exposure* is not expected to match — queueing between prefixes
  // is exactly what the batched workload adds — but the wall-clock ratio
  // is the SoA RIB's headline: shared prelude + columnar decision passes.
  core::Table t2{{"prefixes", "batched (ms)", "P x single (ms)", "speedup"}};
  double largest_speedup = 0;
  std::size_t largest_p = 0;
  for (const std::size_t p : counts) {
    if (p < 4) continue;
    const auto batched_start = std::chrono::steady_clock::now();
    (void)core::run_trials(
        table_point(core::TopologyKind::kInternet, 110, p),
        core::RunOptions{.trials = n_trials});
    const double batched_ms = wall_ms(batched_start);

    const auto single_start = std::chrono::steady_clock::now();
    const std::vector<net::NodeId> origins = spread_origins(110);
    for (std::size_t i = 0; i < p; ++i) {
      core::Scenario s =
          table_point(core::TopologyKind::kInternet, 110, 1);
      // Prefix i >= 1 of the batched run lives at origins[(i-1) % 4]; the
      // single-prefix stand-in measures that origin as its destination.
      if (i > 0) s.destination = origins[(i - 1) % origins.size()];
      (void)core::run_trials(s, core::RunOptions{.trials = n_trials});
    }
    const double single_ms = wall_ms(single_start);

    const double speedup = single_ms / batched_ms;
    if (p >= largest_p) {
      largest_p = p;
      largest_speedup = speedup;
    }
    t2.add_row({std::to_string(p), core::fmt(batched_ms, 0),
                core::fmt(single_ms, 0), core::fmt(speedup, 1)});
  }
  std::printf("\ninternet-110: batched table vs repeated single-prefix:\n");
  t2.print(std::cout);
  emit_table(t2, "Batched decision processing vs repeated single-prefix "
                 "runs (internet-110)");

  std::printf("\nshape checks vs the paper:\n");
  check(largest_speedup >= 2.0,
        "batched full-table processing is >= 2x faster than " +
            std::to_string(largest_p) +
            " single-prefix runs (shared prelude + columnar RIB passes)");
  return 0;
}
