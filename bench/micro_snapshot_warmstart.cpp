// Snapshot warm-start: wall-clock benefit of the prelude cache
// (snap::PreludeCache) on sweeps that share a converged prelude.
//
// Part 1 — multi-event sweep. Tdown, Tlong, and Flap on the same clique,
// config, and seed share their Phase-1 prelude: the converged pre-event
// state is bit-identical across the three events. Cold pass: cache
// disabled, every trial pays cold convergence. Warm pass: cache enabled,
// the first trial per seed deposits its converged checkpoint and every
// other event's trial forks from it. The speedup here is modest: Tdown
// path hunting dominates the sweep, and the cache cannot touch that.
//
// Part 2 — traffic-load sweep under Tlong, the regime the cache is for:
// reconvergence after a link failure is fast, so cold convergence of a
// large clique IS the bulk of each run, and every load level reuses one
// prelude. This is where the headline speedup comes from.
//
// Warm trials must reproduce the cold metrics bit-for-bit in both parts —
// the cache is a pure wall-clock optimization.
//
//   BGPSIM_TRIALS : trials per sweep point (default 3)
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "snap/cache.hpp"

namespace {

using namespace bgpsim;

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct SweepPoint {
  std::string label;
  core::Scenario scenario;
};

struct SweepResult {
  double t_cold = 0;
  double t_warm = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  bool identical = true;
  [[nodiscard]] double speedup() const {
    return t_warm > 0 ? t_cold / t_warm : 0;
  }
};

/// Run the sweep serially twice — cache disabled, then enabled — and
/// compare every point's aggregate and per-trial event counts.
SweepResult run_cold_vs_warm(const std::vector<SweepPoint>& points,
                             std::size_t n_trials, core::Table& table) {
  const auto sweep = [&] {
    std::vector<core::TrialSet> sets;
    sets.reserve(points.size());
    for (const auto& p : points) {
      sets.push_back(core::run_trials(
          p.scenario, core::RunOptions{.trials = n_trials, .jobs = 1}));
    }
    return sets;
  };

  auto& cache = snap::PreludeCache::instance();
  SweepResult result;

  cache.set_capacity(0);  // disabled: every trial pays cold convergence
  std::vector<core::TrialSet> cold;
  result.t_cold = wall_seconds([&] { cold = sweep(); });

  cache.set_capacity(snap::PreludeCache::kDefaultCapacity);
  cache.clear();
  cache.reset_stats();
  std::vector<core::TrialSet> warm;
  result.t_warm = wall_seconds([&] { warm = sweep(); });
  result.hits = cache.hits();
  result.misses = cache.misses();

  for (std::size_t p = 0; p < points.size(); ++p) {
    bool same =
        cold[p].convergence_time_s.mean == warm[p].convergence_time_s.mean &&
        cold[p].convergence_time_s.stddev ==
            warm[p].convergence_time_s.stddev &&
        cold[p].looping_duration_s.mean == warm[p].looping_duration_s.mean &&
        cold[p].ttl_exhaustions.mean == warm[p].ttl_exhaustions.mean &&
        cold[p].looping_ratio.mean == warm[p].looping_ratio.mean &&
        cold[p].loops_formed.mean == warm[p].loops_formed.mean;
    for (std::size_t i = 0; same && i < n_trials; ++i) {
      same = cold[p].runs[i].events_fired == warm[p].runs[i].events_fired;
    }
    result.identical &= same;
    table.add_row({points[p].label,
                   core::fmt(cold[p].convergence_time_s.mean, 3),
                   core::fmt(warm[p].convergence_time_s.mean, 3),
                   same ? "yes" : "NO"});
  }
  return result;
}

void print_result(const SweepResult& r) {
  std::printf("cold %.3f s, warm %.3f s, speedup %.2fx "
              "(cache: %llu hit(s), %llu miss(es))\n",
              r.t_cold, r.t_warm, r.speedup(),
              static_cast<unsigned long long>(r.hits),
              static_cast<unsigned long long>(r.misses));
}

}  // namespace

int main() {
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("micro: snapshot warm-start",
               "prelude-cache speedup on shared-prelude sweeps");

  const std::size_t n_trials = trials(3);

  // ---- Part 1: the paper's event grid on one clique ---------------------
  const auto clique = [](std::size_t size, core::EventKind event) {
    core::Scenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = size;
    s.topology.topo_seed = 5;
    s.event = event;
    s.bgp.mrai = sim::SimTime::seconds(30);
    s.seed = 5;
    return s;
  };

  std::vector<SweepPoint> events;
  events.push_back({"Tdown", clique(13, core::EventKind::kTdown)});
  events.push_back({"Tlong", clique(13, core::EventKind::kTlong)});
  events.push_back({"Flap", clique(13, core::EventKind::kFlap)});

  std::printf("part 1: Clique-13 x {Tdown, Tlong, Flap}, MRAI=30s, "
              "trials=%zu per event\n\n",
              n_trials);
  core::Table event_table{
      {"event", "cold conv (s)", "warm conv (s)", "identical to cold"}};
  const SweepResult event_result =
      run_cold_vs_warm(events, n_trials, event_table);
  event_table.print(std::cout);
  print_result(event_result);
  maybe_csv(event_table);

  // ---- Part 2: traffic-load sweep where the prelude dominates -----------
  std::vector<SweepPoint> loads;
  for (const double pps : {5.0, 10.0, 20.0, 40.0}) {
    core::Scenario s = clique(60, core::EventKind::kTlong);
    s.traffic.interval = sim::SimTime::seconds(1.0 / pps);
    loads.push_back({core::fmt(pps, 0) + " pkt/s", s});
  }

  std::printf("\npart 2: Clique-60 Tlong x {5, 10, 20, 40} pkt/s, "
              "trials=%zu per load\n\n",
              n_trials);
  core::Table load_table{
      {"load", "cold conv (s)", "warm conv (s)", "identical to cold"}};
  const SweepResult load_result = run_cold_vs_warm(loads, n_trials, load_table);
  load_table.print(std::cout);
  print_result(load_result);
  maybe_csv(load_table);

  std::printf("\nchecks:\n");
  if (!event_result.identical || !load_result.identical) {
    std::printf("FATAL: warm-start changed a trial's outcome\n");
    return 1;
  }
  check(true, "warm-start trials reproduce cold metrics bit-for-bit");
  check(event_result.hits == 2 * n_trials,
        "part 1: every trial of the second and third event hit the cache");
  check(load_result.hits == 3 * n_trials,
        "part 2: every trial past the first load level hit the cache");
  check(load_result.speedup() > 1.0,
        "part 2: warm sweep beat the cold sweep (speedup > 1x)");
  return 0;
}
