// Figure 9: the four convergence enhancements under Tlong.
//   (a) TTL exhaustions normalized by standard BGP, B-Clique sizes
//   (b) convergence time, B-Clique sizes
//   (c) TTL exhaustions, Internet-derived sizes
//   (d) convergence time, Internet-derived sizes
//
// Paper expectations: Assertion best in B-Clique; Ghost Flushing reduces
// looping; WRATE reduces B-Clique looping <20-30% but slightly lengthens
// its convergence, and on Internet-derived topologies worsens looping (the
// paper reports an order of magnitude; see EXPERIMENTS.md for our measured
// deviation on that point).
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 9", "Tlong with convergence enhancements");
  const std::size_t n_trials = trials(2);

  const std::vector<bgp::Enhancement> protos{
      bgp::Enhancement::kStandard, bgp::Enhancement::kSsld,
      bgp::Enhancement::kWrate, bgp::Enhancement::kAssertion,
      bgp::Enhancement::kGhostFlushing};

  struct Cell {
    double exhaustions = 0;
    double convergence = 0;
  };

  const auto sweep = [&](core::TopologyKind kind,
                         const std::vector<std::size_t>& sizes,
                         std::size_t point_trials, const char* what)
      -> std::vector<std::vector<Cell>> {
    std::vector<std::vector<Cell>> grid;
    for (const std::size_t n : sizes) {
      std::vector<Cell> row;
      for (const auto proto : protos) {
        const auto set = run_point(kind, n, core::EventKind::kTlong, proto,
                                   30.0, point_trials, /*seed=*/11);
        row.push_back(
            Cell{set.ttl_exhaustions.mean, set.convergence_time_s.mean});
      }
      grid.push_back(std::move(row));
      std::printf("  ... %s n=%zu done\n", what, n);
    }
    return grid;
  };

  const auto print_panels = [&](const char* label_a, const char* label_b,
                                const std::vector<std::size_t>& sizes,
                                const std::vector<std::vector<Cell>>& grid) {
    core::banner(std::cout, label_a);
    core::Table ta{{"size", "BGP", "SSLD", "WRATE", "Assertion", "GhostFlush"}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double base = std::max(grid[i][0].exhaustions, 1.0);
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (std::size_t p = 0; p < protos.size(); ++p) {
        row.push_back(core::fmt(grid[i][p].exhaustions / base, 2));
      }
      ta.add_row(std::move(row));
    }
    ta.print(std::cout);
    maybe_csv(ta);

    core::banner(std::cout, label_b);
    core::Table tb{{"size", "BGP", "SSLD", "WRATE", "Assertion", "GhostFlush"}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (std::size_t p = 0; p < protos.size(); ++p) {
        row.push_back(core::fmt(grid[i][p].convergence, 1));
      }
      tb.add_row(std::move(row));
    }
    tb.print(std::cout);
    maybe_csv(tb);
  };

  std::vector<std::size_t> b_sizes{5, 10, 15};
  if (full_run()) b_sizes.push_back(20);
  const auto bc = sweep(core::TopologyKind::kBClique, b_sizes, n_trials,
                        "b-clique");
  print_panels("Figure 9(a): TTL exhaustions normalized by standard BGP "
               "(B-Clique)",
               "Figure 9(b): convergence time in seconds (B-Clique)", b_sizes,
               bc);

  // Internet Tlong is noisy (random destination/link per trial); use more
  // trials per point.
  std::vector<std::size_t> inet_sizes{48, 75};
  if (full_run()) inet_sizes.push_back(110);
  const auto inet = sweep(core::TopologyKind::kInternet, inet_sizes,
                          std::max<std::size_t>(n_trials, 3), "internet");
  print_panels("Figure 9(c): TTL exhaustions normalized by standard BGP "
               "(Internet-derived)",
               "Figure 9(d): convergence time in seconds (Internet-derived)",
               inet_sizes, inet);

  std::printf("\nshape checks vs the paper:\n");
  enum { kBgp = 0, kSsld = 1, kWrate = 2, kAssert = 3, kGhost = 4 };
  const std::size_t last = b_sizes.size() - 1;
  check(bc[last][kAssert].exhaustions <
            0.5 * std::max(bc[last][kBgp].exhaustions, 1.0),
        "Assertion strongly reduces B-Clique Tlong looping");
  check(bc[last][kWrate].exhaustions < bc[last][kBgp].exhaustions &&
            bc[last][kWrate].exhaustions >
                0.5 * bc[last][kBgp].exhaustions,
        "WRATE trims B-Clique Tlong looping by <~30%");
  check(bc[last][kWrate].convergence >= 0.95 * bc[last][kBgp].convergence,
        "WRATE does not improve B-Clique Tlong convergence");
  check(bc[last][kGhost].exhaustions < bc[last][kBgp].exhaustions,
        "Ghost Flushing reduces B-Clique Tlong looping");

  const std::size_t ilast = inet_sizes.size() - 1;
  check(inet[ilast][kGhost].exhaustions <=
            std::max(inet[ilast][kBgp].exhaustions, 1.0),
        "Ghost Flushing does not worsen Internet Tlong looping");
  check(inet[ilast][kWrate].exhaustions >=
            0.9 * inet[ilast][kBgp].exhaustions,
        "WRATE does not reduce Internet Tlong looping (paper: worsens ~10x; "
        "see EXPERIMENTS.md)");
  return 0;
}
