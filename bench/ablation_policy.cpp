// Ablation: shortest-path policy (the paper's setting) vs Gao-Rexford
// policy routing on the same Internet-derived graphs.
//
// The paper frames looping as a consequence of "topology (or policy)
// changes"; this ablation quantifies how much the policy model itself
// changes the transient-loop picture. Expected: loops persist under policy
// routing (the mechanism is protocol-inherent), with convergence shaped by
// the restricted route choice set.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: routing policy",
               "shortest-path (paper) vs Gao-Rexford policy routing");

  std::vector<std::size_t> sizes{29, 48};
  if (full_run()) sizes.push_back(75);
  const std::size_t n_trials = trials(2);

  core::Table table{{"nodes", "policy", "convergence (s)",
                     "looping duration (s)", "TTL exhaustions",
                     "looping ratio"}};
  double policy_loops = 0;
  for (const std::size_t n : sizes) {
    for (const bool policy : {false, true}) {
      core::Scenario s;
      s.topology.kind = core::TopologyKind::kInternet;
      s.topology.size = n;
      s.topology.topo_seed = 3;
      s.event = core::EventKind::kTdown;
      s.policy_routing = policy;
      s.seed = 3;
      const auto set =
          core::run_trials(s, core::RunOptions{.trials = n_trials, .jobs = 1});
      if (policy) policy_loops += set.ttl_exhaustions.mean;
      table.add_row({std::to_string(n), policy ? "Gao-Rexford" : "shortest",
                     metrics::mean_pm(set.convergence_time_s),
                     metrics::mean_pm(set.looping_duration_s),
                     core::fmt(set.ttl_exhaustions.mean, 0),
                     core::fmt_pct(set.looping_ratio.mean)});
    }
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks:\n");
  check(policy_loops > 0,
        "transient loops persist under Gao-Rexford policy routing "
        "(the paper's mechanism is policy-independent)");
  return 0;
}
