// The paper's headline numbers (§1/§6): on a 110-node Internet-derived
// topology, a Tdown event gave a convergence time of ~527 s and up to 86%
// of packets sent during convergence encountered loops.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Headline (110-node Tdown)",
               "paper: ~527 s convergence, up to 86% looping ratio");

  const std::size_t n_trials = trials(full_run() ? 3 : 1);
  const auto set = run_point(core::TopologyKind::kInternet, 110,
                             core::EventKind::kTdown,
                             bgp::Enhancement::kStandard, 30.0, n_trials,
                             /*seed=*/3);

  core::Table table{{"trial", "convergence (s)", "looping duration (s)",
                     "TTL exhaustions", "looping ratio", "loops formed"}};
  for (std::size_t i = 0; i < set.runs.size(); ++i) {
    const auto& m = set.runs[i].metrics;
    table.add_row({std::to_string(i), core::fmt(m.convergence_time_s, 1),
                   core::fmt(m.looping_duration_s, 1),
                   std::to_string(m.ttl_exhaustions),
                   core::fmt_pct(m.looping_ratio, 1),
                   std::to_string(m.loops_formed)});
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\npaper vs measured:\n");
  std::printf("  convergence : paper ~527 s, measured %.1f s (mean)\n",
              set.convergence_time_s.mean);
  std::printf("  loop ratio  : paper up to 86%%, measured %s (mean)\n",
              core::fmt_pct(set.looping_ratio.mean, 1).c_str());

  std::printf("\nshape checks vs the paper:\n");
  check(set.convergence_time_s.mean > 250 && set.convergence_time_s.mean < 900,
        "convergence in the several-hundred-seconds band");
  check(set.looping_ratio.mean > 0.6, "looping ratio in the 60-90% band");
  check(set.convergence_time_s.mean - set.looping_duration_s.mean < 15,
        "looping persists throughout convergence");
  return 0;
}
