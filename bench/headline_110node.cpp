// The paper's headline numbers (§1/§6): on a 110-node Internet-derived
// topology, a Tdown event gave a convergence time of ~527 s and up to 86%
// of packets sent during convergence encountered loops.
#include <chrono>

#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Headline (110-node Tdown)",
               "paper: ~527 s convergence, up to 86% looping ratio");

  const std::size_t n_trials = trials(full_run() ? 3 : 1);
  const auto set = run_point(core::TopologyKind::kInternet, 110,
                             core::EventKind::kTdown,
                             bgp::Enhancement::kStandard, 30.0, n_trials,
                             /*seed=*/3);

  core::Table table{{"trial", "convergence (s)", "looping duration (s)",
                     "TTL exhaustions", "looping ratio", "loops formed"}};
  for (std::size_t i = 0; i < set.runs.size(); ++i) {
    const auto& m = set.runs[i].metrics;
    table.add_row({std::to_string(i), core::fmt(m.convergence_time_s, 1),
                   core::fmt(m.looping_duration_s, 1),
                   std::to_string(m.ttl_exhaustions),
                   core::fmt_pct(m.looping_ratio, 1),
                   std::to_string(m.loops_formed)});
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\npaper vs measured:\n");
  std::printf("  convergence : paper ~527 s, measured %.1f s (mean)\n",
              set.convergence_time_s.mean);
  std::printf("  loop ratio  : paper up to 86%%, measured %s (mean)\n",
              core::fmt_pct(set.looping_ratio.mean, 1).c_str());

  std::printf("\nshape checks vs the paper:\n");
  check(set.convergence_time_s.mean > 250 && set.convergence_time_s.mean < 900,
        "convergence in the several-hundred-seconds band");
  check(set.looping_ratio.mean > 0.6, "looping ratio in the 60-90% band");
  check(set.convergence_time_s.mean - set.looping_duration_s.mean < 15,
        "looping persists throughout convergence");

  // Convergence hot-loop wall clock: the same headline scenario, timed
  // cold (no prelude cache), stepping through the performance levers —
  // shared paths on the heap scheduler, interned paths on the heap,
  // interned paths on the timer wheel, and finally the ring-backed data
  // plane on top. All four runs are bit-identical in output (checked
  // below), so the wall-clock deltas are pure engine speed — the numbers
  // the BENCH_ artifact tracks over time.
  std::printf("\nconvergence hot-loop wall clock (1 cold trial):\n");
  core::Scenario hot;
  hot.topology.kind = core::TopologyKind::kInternet;
  hot.topology.size = 110;
  hot.topology.topo_seed = 3;
  hot.event = core::EventKind::kTdown;
  hot.bgp.mrai = sim::SimTime::seconds(30.0);
  hot.seed = 3;
  const auto timed = [&](bool interning, bool wheel, bool rings) {
    core::RunOptions options;
    options.trials = 1;
    options.jobs = 1;
    options.snap_cache = false;
    options.path_interning = interning;
    options.timer_wheel = wheel;
    options.dataplane_rings = rings;
    const auto start = std::chrono::steady_clock::now();
    core::TrialSet result = core::run_trials(hot, options);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::pair{wall_s, std::move(result)};
  };
  const auto [plain_s, plain] = timed(false, false, false);
  const auto [interned_s, interned] = timed(true, false, false);
  const auto [wheel_s, wheel] = timed(true, true, false);
  const auto [rings_s, rings] = timed(true, true, true);

  core::Table hot_table{
      {"config", "wall clock (s)", "convergence (s)", "events fired"}};
  const auto hot_row = [&](const char* config, double wall_s,
                           const core::TrialSet& r) {
    hot_table.add_row({config, core::fmt(wall_s, 2),
                       core::fmt(r.convergence_time_s.mean, 1),
                       std::to_string(r.runs.front().events_fired)});
  };
  hot_row("shared paths + heap", plain_s, plain);
  hot_row("interned paths + heap", interned_s, interned);
  hot_row("interned paths + wheel", wheel_s, wheel);
  hot_row("interned paths + wheel + ring plane", rings_s, rings);
  hot_table.print(std::cout);
  emit_table(hot_table, "convergence hot-loop wall clock");

  const auto invariant = [&](const core::TrialSet& r) {
    return r.convergence_time_s.mean == plain.convergence_time_s.mean &&
           r.runs.front().events_fired == plain.runs.front().events_fired;
  };
  check(invariant(interned),
        "interning is output-invariant on the headline scenario");
  check(invariant(wheel),
        "the timer wheel is output-invariant on the headline scenario");
  check(invariant(rings),
        "the ring data plane is output-invariant on the headline scenario");
  return 0;
}
