// Ablation: the loops-vs-drops tradeoff (§3.3/§6 future work).
//
// "Existing loop prevention algorithms, such as the DUAL algorithm, avoid
//  using any previously obtained information after a failure until the
//  information is verified. However, the verification step delays the use
//  of any backup path, causing all incoming packets being dropped in the
//  meanwhile. We are exploring new directions for solutions that minimize
//  both looping and packet losses."
//
// The `backup_caution` knob sweeps between those poles on a Tlong event:
// caution 0 is standard BGP (loops, few drops); large caution approaches
// verify-before-use (few loops, drops during verification).
#include "common.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: backup caution",
               "trading transient loops for packet drops (§3.3)");

  const std::size_t n_trials = trials(2);
  const std::vector<double> cautions{0, 1, 5, 15, 30};

  core::Table table{{"caution (s)", "TTL exhaustions", "no-route drops",
                     "delivered", "convergence (s)", "caution holds"}};
  std::vector<double> exhaustions, drops;
  for (const double caution : cautions) {
    double exh = 0, no_route = 0, delivered = 0, conv = 0, holds = 0;
    for (std::size_t t = 0; t < n_trials; ++t) {
      core::Scenario s;
      s.topology.kind = core::TopologyKind::kBClique;
      s.topology.size = 10;
      s.event = core::EventKind::kTlong;
      s.bgp.backup_caution = sim::SimTime::seconds(caution);
      s.seed = 7 + t;
      const auto m = core::run_experiment(s).metrics;
      exh += static_cast<double>(m.ttl_exhaustions);
      no_route += static_cast<double>(m.packets_no_route);
      delivered += static_cast<double>(m.packets_delivered);
      conv += m.convergence_time_s;
      holds += static_cast<double>(m.bgp.caution_holds);
    }
    const auto nt = static_cast<double>(n_trials);
    exhaustions.push_back(exh / nt);
    drops.push_back(no_route / nt);
    table.add_row({core::fmt(caution, 0), core::fmt(exh / nt, 0),
                   core::fmt(no_route / nt, 0), core::fmt(delivered / nt, 0),
                   core::fmt(conv / nt, 1), core::fmt(holds / nt, 0)});
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks (the paper's stated tradeoff):\n");
  check(exhaustions.back() < 0.5 * exhaustions.front(),
        "more caution => fewer loop-caught packets");
  // Within the caution regime the verification window is what drops
  // packets: drops grow with the window.
  bool grows = true;
  for (std::size_t i = 3; i < drops.size(); ++i) {
    if (drops[i] <= drops[i - 1]) grows = false;
  }
  check(grows, "longer verification windows => more drops (caution >= 5s)");
  std::printf(
      "  note: vs standard BGP (caution 0) even the drop count improves —\n"
      "  caution also suppresses the MRAI-round path exploration that\n"
      "  leaves nodes transiently unreachable. The paper's call for\n"
      "  \"solutions that minimize both looping and packet losses\" is\n"
      "  answered by small windows (~5 s here): zero loop drops and ~5x\n"
      "  fewer no-route drops than standard BGP on this event.\n");
  return 0;
}
