// Microbenchmarks (google-benchmark) for the hot paths of the simulator:
// event-queue churn, RNG, decision process, AS-path construction, loop
// detection, packet forwarding throughput, and the full convergence hot
// loop. With BGPSIM_JSON=DIR the run drops a BENCH_micro_engine.json
// artifact (schema bgpsim-bench-1) holding every result row.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "bgp/decision.hpp"
#include "bgp/path_store.hpp"
#include "bgp/rib.hpp"
#include "common.hpp"
#include "fwd/engine.hpp"
#include "metrics/loop_detector.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/generators.hpp"

namespace {

using namespace bgpsim;

void BM_EventQueuePushPop(benchmark::State& state) {
  // A/B over the queue backend: range(0) = 0 binary heap, 1 timer wheel.
  const auto backend = state.range(0) != 0 ? sim::QueueBackend::kWheel
                                           : sim::QueueBackend::kHeap;
  const auto n = static_cast<std::size_t>(state.range(1));
  sim::Rng rng{1};
  for (auto _ : state) {
    sim::EventQueue q{backend};
    for (std::size_t i = 0; i < n; ++i) {
      q.push(sim::SimTime::micros(
                 static_cast<std::int64_t>(rng.next_below(1'000'000))),
             [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)
    ->Name("BM_EventQueuePushPop/heap")
    ->Args({0, 1024})
    ->Args({0, 16384});
BENCHMARK(BM_EventQueuePushPop)
    ->Name("BM_EventQueuePushPop/wheel")
    ->Args({1, 1024})
    ->Args({1, 16384});

void BM_SimulatorEventChain(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t remaining = n;
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.schedule_after(sim::SimTime::micros(1), chain);
    };
    sim.schedule_at(sim::SimTime::zero(), chain);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimulatorEventChain)->Arg(10000);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform(0.1, 0.5));
  }
}
BENCHMARK(BM_RngUniform);

void BM_DecisionProcess(benchmark::State& state) {
  // Adj-RIB-In with `n` candidate routes of mixed lengths.
  const auto n = static_cast<net::NodeId>(state.range(0));
  bgp::AdjRibIn rib;
  for (net::NodeId peer = 1; peer <= n; ++peer) {
    std::vector<net::NodeId> hops{peer};
    for (net::NodeId h = 0; h < peer % 5; ++h) hops.push_back(100 + h);
    hops.push_back(0);
    rib.set(0, peer, bgp::AsPath{std::move(hops)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::select_best(rib, 0, 50));
  }
}
BENCHMARK(BM_DecisionProcess)->Arg(8)->Arg(64);

void BM_LoopDetectorRecompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  metrics::LoopDetector d{n};
  // Chain everyone toward node 0.
  for (net::NodeId v = 1; v < n; ++v) {
    d.on_next_hop_change(v, v - 1, sim::SimTime::zero());
  }
  std::uint64_t flip = 0;
  for (auto _ : state) {
    // Flip one edge back and forth: forms/resolves a 2-node loop each time.
    const auto t = sim::SimTime::micros(static_cast<std::int64_t>(++flip));
    d.on_next_hop_change(0, (flip % 2) ? std::optional<net::NodeId>{1}
                                       : std::nullopt,
                         t);
  }
  benchmark::DoNotOptimize(d.records().size());
}
BENCHMARK(BM_LoopDetectorRecompute)->Arg(110);

void BM_AsPathPrepended(benchmark::State& state) {
  // The per-update operation of the convergence hot loop: adopting a
  // neighbor's path is one cons. range(0) toggles interning.
  const bool interned = state.range(0) != 0;
  bgp::PathStore store;
  std::optional<bgp::PathStore::Scope> scope;
  if (interned) scope.emplace(store);
  const bgp::AsPath base{4, 3, 2, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.prepended(5));
  }
}
BENCHMARK(BM_AsPathPrepended)->Arg(0)->Arg(1);

void BM_ConvergenceHotLoop(benchmark::State& state) {
  // End to end: cold convergence + Tdown churn + packet draining on a
  // clique — the loop the figure benches spend their time in. range(0)
  // toggles path interning, range(1) the timer-wheel scheduler; every
  // setting produces identical outputs (the digest-equality suites enforce
  // it), so the deltas are pure speed.
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kClique;
  s.topology.size = static_cast<std::size_t>(state.range(2));
  s.event = core::EventKind::kTdown;
  s.bgp.mrai = sim::SimTime::seconds(30);
  s.seed = 1;
  core::RunOptions options;
  options.trials = 1;
  options.jobs = 1;
  options.snap_cache = false;  // time the cold prelude every iteration
  options.path_interning = state.range(0) != 0;
  options.timer_wheel = state.range(1) != 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const core::TrialSet set = core::run_trials(s, options);
    events += set.runs.front().events_fired;
    benchmark::DoNotOptimize(set.convergence_time_s.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ConvergenceHotLoop)
    ->ArgNames({"intern", "wheel", "n"})
    ->Args({0, 0, 12})
    ->Args({1, 0, 12})
    ->Args({1, 1, 12})
    ->Unit(benchmark::kMillisecond);

void BM_PacketForwardingThroughput(benchmark::State& state) {
  // Chain of 16: measures per-hop cost of the data plane.
  auto topo = topo::make_chain(16);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::vector<fwd::Fib> fibs(topo.node_count());
    for (net::NodeId v = 1; v < topo.node_count(); ++v) {
      fibs[v].set_next_hop(0, v - 1);
    }
    fwd::DataPlane plane{sim, topo, fibs, fwd::DataPlaneOptions::single(0)};
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) plane.inject(fwd::Injection{.source = 15});
    sim.run();
    benchmark::DoNotOptimize(plane.counters().delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          15);
}
BENCHMARK(BM_PacketForwardingThroughput);

void BM_DataPlaneHop(benchmark::State& state) {
  // A/B over the hop-store backend: range(0) = 0 binary heap, 1 per-tick
  // FIFO rings. A looping 2-node FIB keeps `n` packets bouncing until TTL
  // exhaustion, so the measurement is almost pure hop machinery: hop-store
  // push/pop plus one FIB decision per (node, prefix) cohort under rings,
  // per packet under the heap.
  const auto backend = state.range(0) != 0 ? fwd::PlaneBackend::kRings
                                           : fwd::PlaneBackend::kHeap;
  const auto n = static_cast<int>(state.range(1));
  auto topo = topo::make_chain(4);
  std::uint64_t hops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    std::vector<fwd::Fib> fibs(topo.node_count());
    fibs[3].set_next_hop(0, 2);
    fibs[2].set_next_hop(0, 3);  // 2 <-> 3 loop: every packet dies by TTL
    fwd::DataPlaneOptions options = fwd::DataPlaneOptions::single(0);
    options.backend = backend;
    fwd::DataPlane plane{sim, topo, fibs, std::move(options)};
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      plane.inject(fwd::Injection{.source = 3, .ttl = 64});
    }
    sim.run();
    hops += plane.counters().ttl_exhausted * 63;
    benchmark::DoNotOptimize(plane.counters().ttl_exhausted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_DataPlaneHop)
    ->Name("BM_DataPlaneHop/heap")
    ->Args({0, 64})
    ->Args({0, 1024});
BENCHMARK(BM_DataPlaneHop)
    ->Name("BM_DataPlaneHop/ring")
    ->Args({1, 64})
    ->Args({1, 1024});

/// Console output as usual, plus every result row captured into a
/// core::Table so bench::emit_table can drop the bgpsim-bench-1 artifact.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double items_per_second = 0;
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        items_per_second = it->second.value;
      }
      table_.add_row({run.benchmark_name(),
                      core::fmt(run.GetAdjustedRealTime(), 1),
                      run.time_unit == benchmark::kMillisecond ? "ms" : "ns",
                      std::to_string(run.iterations),
                      core::fmt(items_per_second, 0)});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const core::Table& table() const { return table_; }

 private:
  core::Table table_{
      {"benchmark", "real time", "unit", "iterations", "items/s"}};
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  bench::emit_table(reporter.table(), "engine microbenchmarks");
  benchmark::Shutdown();
  return 0;
}
