// Figure 6: number of TTL exhaustions (left axis) and looping ratio (right
// axis) vs network size. Panel (a): Tdown in Clique; panel (b): Tlong in
// B-Clique.
//
// Paper expectation: looping ratio >65% for Clique Tdown at n >= 15 and
// >35% for B-Clique Tlong at n >= 15; exhaustion counts grow with size.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 6", "TTL exhaustions & looping ratio vs size");
  const std::size_t n_trials = trials(2);

  // ---- Panel (a): Tdown, Clique ----
  core::banner(std::cout, "Figure 6(a): Tdown in Clique");
  std::vector<std::size_t> clique_sizes{5, 10, 15, 20, 25};
  if (full_run()) clique_sizes.push_back(30);
  core::Table ta{{"clique n", "TTL exhaustions", "looping ratio",
                  "pkts in window"}};
  double ratio_at_15_plus = 1.0;
  std::vector<double> xs_a, exh_a;
  for (const std::size_t n : clique_sizes) {
    const auto set = run_point(core::TopologyKind::kClique, n,
                               core::EventKind::kTdown,
                               bgp::Enhancement::kStandard, 30.0, n_trials);
    if (n >= 15) {
      ratio_at_15_plus = std::min(ratio_at_15_plus, set.looping_ratio.mean);
    }
    xs_a.push_back(static_cast<double>(n));
    exh_a.push_back(set.ttl_exhaustions.mean);
    double pkts = 0;
    for (const auto& r : set.runs) {
      pkts += static_cast<double>(r.metrics.packets_sent_during_convergence);
    }
    ta.add_row({std::to_string(n), core::fmt(set.ttl_exhaustions.mean, 0),
                core::fmt_pct(set.looping_ratio.mean),
                core::fmt(pkts / static_cast<double>(set.runs.size()), 0)});
  }
  ta.print(std::cout);
  maybe_csv(ta);

  // ---- Panel (b): Tlong, B-Clique ----
  core::banner(std::cout, "Figure 6(b): Tlong in B-Clique");
  std::vector<std::size_t> b_sizes{5, 10, 15, 20};
  if (full_run()) b_sizes.push_back(25);
  core::Table tb{{"b-clique n", "TTL exhaustions", "looping ratio",
                  "pkts in window"}};
  double b_ratio_at_15_plus = 1.0;
  std::vector<double> xs_b, exh_b;
  for (const std::size_t n : b_sizes) {
    const auto set = run_point(core::TopologyKind::kBClique, n,
                               core::EventKind::kTlong,
                               bgp::Enhancement::kStandard, 30.0, n_trials);
    if (n >= 15) {
      b_ratio_at_15_plus = std::min(b_ratio_at_15_plus, set.looping_ratio.mean);
    }
    xs_b.push_back(static_cast<double>(n));
    exh_b.push_back(set.ttl_exhaustions.mean);
    double pkts = 0;
    for (const auto& r : set.runs) {
      pkts += static_cast<double>(r.metrics.packets_sent_during_convergence);
    }
    tb.add_row({std::to_string(n), core::fmt(set.ttl_exhaustions.mean, 0),
                core::fmt_pct(set.looping_ratio.mean),
                core::fmt(pkts / static_cast<double>(set.runs.size()), 0)});
  }
  tb.print(std::cout);
  maybe_csv(tb);

  std::printf("\nshape checks vs the paper:\n");
  check(ratio_at_15_plus > 0.65,
        "Clique Tdown looping ratio > 65% for n >= 15 (got " +
            core::fmt_pct(ratio_at_15_plus) + ")");
  check(b_ratio_at_15_plus > 0.35,
        "B-Clique Tlong looping ratio > 35% for n >= 15 (got " +
            core::fmt_pct(b_ratio_at_15_plus) + ")");
  check(exh_a.back() > exh_a.front() && exh_b.back() > exh_b.front(),
        "TTL exhaustion counts grow with size");
  return 0;
}
