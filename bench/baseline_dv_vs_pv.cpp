// Baseline: link state vs distance vector vs path vector (paper §2 / §6).
//
// "For distance vector protocols, poison-reverse can be used to detect
//  two-node loops but fails to detect longer loops. A path vector routing
//  protocol extends the effectiveness of poison-reverse to the entire
//  path..." — and, unlike DV, its transient looping is bounded by path
// propagation rather than by counting to infinity.
//
// Table 1: clique Tdown under RIP-like DV (periodic refresh) with varying
// `infinity`, next to standard BGP (MRAI 30 s) on the same topology.
// Table 2: the same under a doubled refresh/damping interval — DV scales
// with *both* knobs multiplied, PV only with MRAI.
#include "common.hpp"
#include "core/dv_experiment.hpp"
#include "core/ls_experiment.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Baseline: DV (RIP-like) vs PV (BGP)",
               "counting-to-infinity vs bounded path exploration");

  const std::size_t n_trials = trials(2);
  const std::size_t size = 10;

  const auto run_dv = [&](int infinity, double periodic_s,
                          std::uint64_t seed) {
    core::DvScenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = size;
    s.event = core::EventKind::kTdown;
    s.dv.triggered = false;  // textbook periodic-refresh counting setting
    s.dv.periodic = sim::SimTime::seconds(periodic_s);
    s.dv.infinity = infinity;
    s.seed = seed;
    return core::run_dv_experiment(s).metrics;
  };

  core::Table table{{"protocol", "damping", "convergence (s)",
                     "looping duration (s)", "TTL exhaustions",
                     "loops formed"}};

  std::vector<double> dv_convs;
  for (const int infinity : {8, 16, 32}) {
    double conv = 0, loopdur = 0, exh = 0, loops = 0;
    for (std::size_t t = 0; t < n_trials; ++t) {
      const auto m = run_dv(infinity, 10.0, 1 + t);
      conv += m.convergence_time_s;
      loopdur += m.looping_duration_s;
      exh += static_cast<double>(m.ttl_exhaustions);
      loops += static_cast<double>(m.loops_formed);
    }
    const auto nt = static_cast<double>(n_trials);
    dv_convs.push_back(conv / nt);
    table.add_row({"DV inf=" + std::to_string(infinity),
                   "periodic 10s", core::fmt(conv / nt, 1),
                   core::fmt(loopdur / nt, 1), core::fmt(exh / nt, 0),
                   core::fmt(loops / nt, 1)});
  }

  const auto pv = run_point(core::TopologyKind::kClique, size,
                            core::EventKind::kTdown,
                            bgp::Enhancement::kStandard, 30.0, n_trials);
  table.add_row({"PV (BGP)", "MRAI 30s",
                 core::fmt(pv.convergence_time_s.mean, 1),
                 core::fmt(pv.looping_duration_s.mean, 1),
                 core::fmt(pv.ttl_exhaustions.mean, 0),
                 core::fmt(pv.loops_formed.mean, 1)});
  table.print(std::cout);
  maybe_csv(table);

  // ---- Table 2: the protocol trio on one Tlong event ------------------
  core::banner(std::cout,
               "Tlong on B-Clique-8: link state vs distance vector vs BGP");
  core::Table t2{{"protocol", "convergence (s)", "max loop duration (s)",
                  "loops", "TTL exhaustions"}};

  double ls_conv = 0, ls_maxloop = 0, ls_loops = 0, ls_exh = 0;
  for (std::size_t t = 0; t < n_trials; ++t) {
    core::LsScenario s;
    s.topology.kind = core::TopologyKind::kBClique;
    s.topology.size = 8;
    s.event = core::EventKind::kTlong;
    s.seed = 1 + t;
    const auto m = core::run_ls_experiment(s).metrics;
    ls_conv += m.convergence_time_s;
    ls_maxloop = std::max(ls_maxloop, m.max_loop_duration_s);
    ls_loops += static_cast<double>(m.loops_formed);
    ls_exh += static_cast<double>(m.ttl_exhaustions);
  }
  const auto nt = static_cast<double>(n_trials);
  t2.add_row({"LS (OSPF-like)", core::fmt(ls_conv / nt, 2),
              core::fmt(ls_maxloop, 2), core::fmt(ls_loops / nt, 1),
              core::fmt(ls_exh / nt, 0)});

  double dvt_conv = 0, dvt_maxloop = 0, dvt_loops = 0, dvt_exh = 0;
  for (std::size_t t = 0; t < n_trials; ++t) {
    core::DvScenario s;
    s.topology.kind = core::TopologyKind::kBClique;
    s.topology.size = 8;
    s.event = core::EventKind::kTlong;
    s.dv.periodic = sim::SimTime::zero();  // triggered-only, RIP timers
    s.seed = 1 + t;
    const auto m = core::run_dv_experiment(s).metrics;
    dvt_conv += m.convergence_time_s;
    dvt_maxloop = std::max(dvt_maxloop, m.max_loop_duration_s);
    dvt_loops += static_cast<double>(m.loops_formed);
    dvt_exh += static_cast<double>(m.ttl_exhaustions);
  }
  t2.add_row({"DV (RIP-like)", core::fmt(dvt_conv / nt, 2),
              core::fmt(dvt_maxloop, 2), core::fmt(dvt_loops / nt, 1),
              core::fmt(dvt_exh / nt, 0)});

  const auto pvt = run_point(core::TopologyKind::kBClique, 8,
                             core::EventKind::kTlong,
                             bgp::Enhancement::kStandard, 30.0, n_trials);
  double pv_maxloop = 0;
  for (const auto& r : pvt.runs) {
    pv_maxloop = std::max(pv_maxloop, r.metrics.max_loop_duration_s);
  }
  t2.add_row({"PV (BGP)", core::fmt(pvt.convergence_time_s.mean, 2),
              core::fmt(pv_maxloop, 2),
              core::fmt(pvt.loops_formed.mean, 1),
              core::fmt(pvt.ttl_exhaustions.mean, 0)});
  t2.print(std::cout);
  maybe_csv(t2);

  std::printf("\nshape checks vs the paper (§2/§6):\n");
  check(dv_convs[2] > 1.5 * dv_convs[1] && dv_convs[1] > 1.2 * dv_convs[0],
        "DV convergence scales with `infinity` (counting to infinity)");
  check(pv.loops_formed.mean > 0,
        "PV still loops transiently (full paths do not prevent loops)");
  check(ls_maxloop < 1.0,
        "LS micro-loops (if any) last < flooding + SPF time "
        "(Hengartner et al.'s 'rare and short')");
  check(pv_maxloop > 5.0 * std::max(ls_maxloop, 0.2),
        "BGP loops outlive LS micro-loops by an order of magnitude "
        "(Sridharan et al.: packet loops correlate with BGP)");
  std::printf(
      "  note: PV loop durations are bounded by (m-1) x MRAI — see\n"
      "  ablation_loop_bound — while DV loop durations scale with the\n"
      "  counting horizon. None of the three is transient-loop-free.\n");
  return 0;
}
