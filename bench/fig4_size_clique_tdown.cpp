// Figure 4(a): overall looping duration and convergence time vs Clique
// size, Tdown, MRAI 30 s.
//
// Paper expectation: looping duration tracks convergence time to within a
// few seconds, and both grow with network size.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 4(a)", "Tdown in Clique: looping vs convergence");

  std::vector<std::size_t> sizes{5, 10, 15, 20, 25};
  if (full_run()) sizes.push_back(30);
  const std::size_t n_trials = trials(2);

  core::Table table{{"clique n", "convergence (s)", "looping duration (s)",
                     "gap (s)", "TTL exhaustions"}};
  std::vector<double> xs, conv, loop;
  double max_gap = 0;
  for (const std::size_t n : sizes) {
    const auto set = run_point(core::TopologyKind::kClique, n,
                               core::EventKind::kTdown,
                               bgp::Enhancement::kStandard, 30.0, n_trials);
    const double gap = set.convergence_time_s.mean - set.looping_duration_s.mean;
    max_gap = std::max(max_gap, gap);
    xs.push_back(static_cast<double>(n));
    conv.push_back(set.convergence_time_s.mean);
    loop.push_back(set.looping_duration_s.mean);
    table.add_row({std::to_string(n),
                   metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s), core::fmt(gap, 1),
                   core::fmt(set.ttl_exhaustions.mean, 0)});
  }
  table.print(std::cout);
  emit_table(table, "Figure 4(a): Tdown in Clique — looping vs convergence");

  std::printf("\nshape checks vs the paper:\n");
  check(max_gap < 15.0,
        "looping duration within a few seconds of convergence time");
  check(conv.back() > conv.front() && loop.back() > loop.front(),
        "both metrics grow with clique size");
  const auto f = metrics::fit_line(xs, conv);
  check(f.r2 > 0.9, "convergence grows steadily with n (R2=" +
                        core::fmt(f.r2, 3) + ")");
  return 0;
}
