// Ablation: the failure asymmetry of transient loops.
//
// The paper's §3 mechanism needs *obsolete* path state: a node falls back
// to a saved path that the latest change has invalidated. A route
// announcement into a quiet network (Tup) creates no obsolete state, so it
// should produce (essentially) no loops, while the matching Tdown on the
// same graphs loops massively. This quantifies that asymmetry.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: Tdown vs Tup",
               "loops need obsolete state: failures loop, announcements don't");

  const std::size_t n_trials = trials(2);
  struct Row {
    core::TopologyKind kind;
    std::size_t size;
  };
  std::vector<Row> rows{{core::TopologyKind::kClique, 15},
                        {core::TopologyKind::kInternet, 48}};
  if (full_run()) rows.push_back({core::TopologyKind::kInternet, 110});

  core::Table table{{"topology", "event", "convergence (s)",
                     "TTL exhaustions", "loops formed"}};
  double tup_exhaustions = 0, tdown_exhaustions = 0;
  for (const auto& row : rows) {
    for (const auto event : {core::EventKind::kTdown, core::EventKind::kTup}) {
      const auto set = run_point(row.kind, row.size, event,
                                 bgp::Enhancement::kStandard, 30.0, n_trials,
                                 /*seed=*/3);
      (event == core::EventKind::kTup ? tup_exhaustions : tdown_exhaustions) +=
          set.ttl_exhaustions.mean;
      table.add_row({std::string{to_string(row.kind)} + "-" +
                         std::to_string(row.size),
                     to_string(event),
                     metrics::mean_pm(set.convergence_time_s),
                     core::fmt(set.ttl_exhaustions.mean, 0),
                     core::fmt(set.loops_formed.mean, 1)});
    }
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks:\n");
  check(tdown_exhaustions > 100 * std::max(tup_exhaustions, 1.0),
        "Tdown loops dwarf Tup loops by orders of magnitude");
  return 0;
}
