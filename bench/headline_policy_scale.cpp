// Headline: transient route looping at Internet scale under Gao-Rexford
// policy routing (synthetic AS graphs, topo/generators.cpp).
//
// The paper measures looping on 29-110 node abstractions of the 1997-2000
// Internet; this bench asks whether its mechanism survives both the three
// orders of magnitude of growth since and the valley-free policy filter:
// loop count and duration vs AS-graph scale (1k/10k nodes, 75k under
// BGPSIM_FULL=1 or any list via BGPSIM_POLICY_SIZES) and vs MRAI. Every
// data point is executed through the campaign service (svc::run_campaign,
// fork workers), so the numbers come from the exact path a distributed
// campaign uses and the printed digests are bit-identical at any worker
// count.
//
// Expected (and the headline finding): loops still form at Internet scale
// — the mechanism is protocol-inherent, not an artifact of the paper's
// small abstractions — but valley-free export makes them rare, small, and
// short-lived: most trials see none, and the ones that loop resolve well
// inside one MRAI window, so looping duration is near-flat in MRAI where
// the paper's dense abstractions (Figure 5) grow linearly. Destinations
// are low-degree (stub) ASes, matching the paper's methodology.
#include "common.hpp"

#include <cstdint>

#include "svc/coordinator.hpp"

namespace {

bgpsim::core::Scenario policy_point(std::size_t nodes,
                                    bgpsim::core::EventKind event,
                                    double mrai_s) {
  bgpsim::core::Scenario s;
  s.topology.kind = bgpsim::core::TopologyKind::kAsGraph;
  s.topology.size = nodes;
  s.topology.topo_seed = 1;
  s.event = event;
  s.policy_routing = true;
  s.bgp.mrai = bgpsim::sim::SimTime::seconds(mrai_s);
  s.seed = 1;
  return s;
}

}  // namespace

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Headline: policy-routed scale",
               "loop count/duration vs AS-graph size and MRAI (Gao-Rexford)");

  // Loops hit only a few percent of policy-routed trials, so meaningful
  // means need more repetitions than the figure benches' default.
  const std::vector<std::size_t> sizes = core::env::policy_sizes();
  const std::size_t n_trials = trials(8);
  constexpr double kMraiS = 30.0;  // the paper's default timer

  // ---- loop behavior vs scale, Tdown and Tlong ---------------------------
  svc::CampaignSpec scale;
  for (const std::size_t n : sizes) {
    for (const auto ev : {core::EventKind::kTdown, core::EventKind::kTlong}) {
      scale.scenarios.push_back(policy_point(n, ev, kMraiS));
    }
  }
  scale.run.trials = n_trials;
  const auto by_scale = svc::run_campaign(scale);

  core::Table t1{{"nodes", "event", "loops formed", "looping duration (s)",
                  "max loop (s)", "convergence (s)", "TTL exhaustions"}};
  double tdown_loops = 0, tlong_loops = 0;
  std::size_t slot = 0;
  for (const std::size_t n : sizes) {
    for (const auto ev : {core::EventKind::kTdown, core::EventKind::kTlong}) {
      const auto& set = by_scale.sets[slot++];
      (ev == core::EventKind::kTlong ? tlong_loops : tdown_loops) +=
          set.loops_formed.mean;
      t1.add_row({std::to_string(n), core::to_string(ev),
                  core::fmt(set.loops_formed.mean, 1),
                  metrics::mean_pm(set.looping_duration_s),
                  metrics::mean_pm(set.max_loop_duration_s),
                  metrics::mean_pm(set.convergence_time_s),
                  core::fmt(set.ttl_exhaustions.mean, 0)});
    }
  }
  t1.print(std::cout);
  emit_table(t1, "Policy-routed AS graphs: loop metrics vs scale");
  std::printf("campaign digest %016llx (bit-identical at any worker count)\n",
              static_cast<unsigned long long>(by_scale.digest));

  // ---- loop behavior vs MRAI at the smallest scale (Tdown: the event
  // with the most loop signal on policy graphs) ----------------------------
  std::vector<double> mrais{5, 15, 30};
  if (full_run()) {
    mrais.push_back(45);
    mrais.push_back(60);
  }
  svc::CampaignSpec sweep;
  for (const double m : mrais) {
    sweep.scenarios.push_back(
        policy_point(sizes.front(), core::EventKind::kTdown, m));
  }
  sweep.run.trials = n_trials;
  const auto by_mrai = svc::run_campaign(sweep);

  core::Table t2{{"MRAI (s)", "loops formed", "looping duration (s)",
                  "max loop (s)", "convergence (s)"}};
  std::vector<double> xs, loop_s;
  for (std::size_t i = 0; i < mrais.size(); ++i) {
    const auto& set = by_mrai.sets[i];
    xs.push_back(mrais[i]);
    loop_s.push_back(set.looping_duration_s.mean);
    t2.add_row({core::fmt(mrais[i], 0), core::fmt(set.loops_formed.mean, 1),
                metrics::mean_pm(set.looping_duration_s),
                metrics::mean_pm(set.max_loop_duration_s),
                metrics::mean_pm(set.convergence_time_s)});
  }
  t2.print(std::cout);
  emit_table(t2, "Policy-routed AS graphs: loop metrics vs MRAI (Tdown)");
  std::printf("campaign digest %016llx (bit-identical at any worker count)\n",
              static_cast<unsigned long long>(by_mrai.digest));

  const auto fit = metrics::fit_line(xs, loop_s);
  std::printf("\nlinear fit: looping = %.1f + %.2f*M (R2=%.3f)\n",
              fit.intercept, fit.slope, fit.r2);
  std::printf("\nshape checks vs the paper:\n");
  check(tdown_loops + tlong_loops > 0,
        "transient loops still form on policy-routed AS graphs "
        "(the mechanism survives valley-free filtering at scale)");
  check(fit.slope < 0.1,
        "looping duration is near-flat in MRAI: valley-free choice sets "
        "keep loops inside one MRAI window, unlike the paper's dense "
        "abstractions (Figure 5's linear growth)");
  return 0;
}
