// Shared helpers for the figure-reproduction bench binaries.
//
// Environment knobs (full table: docs/RUNNING.md):
//   BGPSIM_TRIALS : trials per data point (default per bench, usually 2-3)
//   BGPSIM_FULL=1 : run the paper's full size range (slower)
//   BGPSIM_CSV=1  : append CSV dumps after each table
//   BGPSIM_JOBS   : worker threads per data point (default: all cores);
//                   results are bit-identical at any job count
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "metrics/stats.hpp"

namespace bgpsim::bench {

inline std::size_t trials(std::size_t fallback) {
  return core::env_or("BGPSIM_TRIALS", fallback);
}

inline bool full_run() { return core::env_or("BGPSIM_FULL", 0) != 0; }

inline bool csv_output() { return core::env_or("BGPSIM_CSV", 0) != 0; }

/// Build and run one aggregated data point. Trials fan out across
/// BGPSIM_JOBS worker threads (default: all cores); the aggregate is
/// bit-identical to a serial run regardless of job count.
inline core::TrialSet run_point(core::TopologyKind kind, std::size_t size,
                                core::EventKind event, bgp::Enhancement proto,
                                double mrai_s, std::size_t n_trials,
                                std::uint64_t seed = 1) {
  core::Scenario s;
  s.topology.kind = kind;
  s.topology.size = size;
  s.topology.topo_seed = seed;
  s.event = event;
  s.bgp = s.bgp.with(proto);
  s.bgp.mrai = sim::SimTime::seconds(mrai_s);
  s.seed = seed;
  return core::run_trials_parallel(s, n_trials);
}

/// Print a shape-expectation check line ("the paper's claim held / didn't").
inline bool check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "WARN", what.c_str());
  return ok;
}

inline void maybe_csv(const core::Table& table) {
  if (!csv_output()) return;
  std::printf("-- csv --\n");
  table.write_csv(std::cout);
}

inline void print_header(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("(shape reproduction: trends/orderings matter, absolute\n");
  std::printf(" seconds depend on the substituted topologies; see\n");
  std::printf(" EXPERIMENTS.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace bgpsim::bench
