// Shared helpers for the figure-reproduction bench binaries.
//
// Environment knobs (full table: docs/RUNNING.md):
//   BGPSIM_TRIALS : trials per data point (default per bench, usually 2-3)
//   BGPSIM_FULL=1 : run the paper's full size range (slower)
//   BGPSIM_CSV=1  : append CSV dumps after each table
//   BGPSIM_JSON   : directory to drop a BENCH_<bench>.json artifact into —
//                   every table the bench prints, as machine-readable JSON
//   BGPSIM_JOBS   : worker threads per data point (default: all cores);
//                   results are bit-identical at any job count
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/env.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "metrics/stats.hpp"

namespace bgpsim::bench {

inline std::size_t trials(std::size_t fallback) {
  return core::env::trials(fallback);
}

inline bool full_run() { return core::env::full_run(); }

inline bool csv_output() { return core::env::csv(); }

/// Build and run one aggregated data point. Trials fan out across
/// BGPSIM_JOBS worker threads (default: all cores); the aggregate is
/// bit-identical to a serial run regardless of job count.
inline core::TrialSet run_point(core::TopologyKind kind, std::size_t size,
                                core::EventKind event, bgp::Enhancement proto,
                                double mrai_s, std::size_t n_trials,
                                std::uint64_t seed = 1) {
  core::Scenario s;
  s.topology.kind = kind;
  s.topology.size = size;
  s.topology.topo_seed = seed;
  s.event = event;
  s.bgp = s.bgp.with(proto);
  s.bgp.mrai = sim::SimTime::seconds(mrai_s);
  s.seed = seed;
  core::RunOptions options;
  options.trials = n_trials;
  return core::run_trials(s, options);
}

/// Print a shape-expectation check line ("the paper's claim held / didn't").
inline bool check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "WARN", what.c_str());
  return ok;
}

/// BGPSIM_JSON=DIR, or empty when the knob is unset.
inline const char* json_dir() { return core::env::json_dir(); }

namespace detail {

/// This bench binary's name (basename of /proc/self/exe), used to name the
/// JSON artifact: BENCH_<bench>.json.
inline const std::string& bench_name() {
  static const std::string name = [] {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    std::string self = n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                             : std::string{"bench"};
    const std::size_t slash = self.rfind('/');
    return slash == std::string::npos ? self : self.substr(slash + 1);
  }();
  return name;
}

/// Process-wide collector behind the BGPSIM_JSON knob. Every table that
/// flows through emit_table()/maybe_csv() is captured; the artifact is
/// written once, when the collector is destroyed at process exit.
class JsonArtifact {
 public:
  static JsonArtifact& instance() {
    static JsonArtifact artifact;
    return artifact;
  }

  void add(const core::Table& table, const std::string& title) {
    std::ostringstream os;
    table.write_json(os, title);
    tables_.push_back(os.str());
  }

  ~JsonArtifact() {
    if (json_dir() == nullptr || tables_.empty()) return;
    const std::string path =
        std::string{json_dir()} + "/BENCH_" + bench_name() + ".json";
    std::ofstream out{path};
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\"schema\": \"bgpsim-bench-1\", \"bench\": \"" << bench_name()
        << "\", \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (i) out << ", ";
      out << tables_[i];
    }
    out << "]}\n";
    std::fprintf(stderr, "bench: json artifact -> %s\n", path.c_str());
  }

 private:
  std::vector<std::string> tables_;
};

}  // namespace detail

/// Emit one finished table: CSV dump when BGPSIM_CSV=1, and capture for the
/// BENCH_<bench>.json artifact when BGPSIM_JSON is set. `title` labels the
/// table inside the JSON artifact (the printed output already has banners).
inline void emit_table(const core::Table& table, const std::string& title) {
  if (json_dir() != nullptr) detail::JsonArtifact::instance().add(table, title);
  if (!csv_output()) return;
  std::printf("-- csv --\n");
  table.write_csv(std::cout);
}

inline void maybe_csv(const core::Table& table) { emit_table(table, ""); }

inline void print_header(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("(shape reproduction: trends/orderings matter, absolute\n");
  std::printf(" seconds depend on the substituted topologies; see\n");
  std::printf(" EXPERIMENTS.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace bgpsim::bench
