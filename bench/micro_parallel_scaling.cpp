// Parallel trial-runner scaling: wall-clock speedup of
// core::run_trials_parallel over the serial path as the job count grows,
// on one Figure-4(c)-style data point (Internet topology, Tdown, MRAI 30 s,
// 16 trials). Also re-checks the determinism guarantee: every job count
// must reproduce the serial aggregate bit-for-bit.
//
//   BGPSIM_TRIALS : trials in the data point (default 16)
//
// Speedup is bounded by min(jobs, cores, trials); on an 8-core machine the
// 8-job row should land >= 3x (trial durations vary, so the longest trial
// plus imbalance keeps it below the ideal 8x).
#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

#include "common.hpp"
#include "sim/thread_pool.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("micro: parallel scaling",
               "run_trials_parallel speedup vs job count");

  const std::size_t n_trials = trials(16);
  core::Scenario s;
  s.topology.kind = core::TopologyKind::kInternet;
  s.topology.size = 29;
  s.topology.topo_seed = 3;
  s.event = core::EventKind::kTdown;
  s.bgp.mrai = sim::SimTime::seconds(30);
  s.seed = 3;

  std::printf("point: %s, MRAI=30s, trials=%zu, hardware threads=%zu\n\n",
              s.label().c_str(), n_trials,
              sim::ThreadPool::default_workers());

  core::TrialSet serial;
  const double t_serial =
      wall_seconds([&] {
        serial = core::run_trials(
            s, core::RunOptions{.trials = n_trials, .jobs = 1});
      });

  core::Table table{{"jobs", "wall (s)", "speedup", "conv mean (s)",
                     "identical to serial"}};
  table.add_row({"serial", core::fmt(t_serial, 2), "1.00",
                 core::fmt(serial.convergence_time_s.mean, 3), "-"});

  double best_speedup = 1.0;
  for (const std::size_t jobs : std::vector<std::size_t>{1, 2, 4, 8}) {
    core::TrialSet set;
    const double t =
        wall_seconds([&] {
          set = core::run_trials(
              s, core::RunOptions{.trials = n_trials, .jobs = jobs});
        });
    const bool identical =
        set.convergence_time_s.mean == serial.convergence_time_s.mean &&
        set.convergence_time_s.stddev == serial.convergence_time_s.stddev &&
        set.looping_duration_s.mean == serial.looping_duration_s.mean &&
        set.ttl_exhaustions.mean == serial.ttl_exhaustions.mean &&
        set.looping_ratio.mean == serial.looping_ratio.mean &&
        set.loops_formed.mean == serial.loops_formed.mean;
    const double speedup = t > 0 ? t_serial / t : 0;
    if (jobs > 1) best_speedup = std::max(best_speedup, speedup);
    table.add_row({std::to_string(jobs), core::fmt(t, 2),
                   core::fmt(speedup, 2),
                   core::fmt(set.convergence_time_s.mean, 3),
                   identical ? "yes" : "NO"});
    if (!identical) {
      std::printf("FATAL: job count %zu changed the aggregate\n", jobs);
      return 1;
    }
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nchecks:\n");
  check(true, "all job counts reproduced the serial aggregate bit-for-bit");
  const std::size_t cores = sim::ThreadPool::default_workers();
  if (cores >= 8) {
    check(best_speedup >= 3.0, "8-job speedup >= 3x on an 8-core machine");
  } else {
    std::printf("  [SKIP] speedup target needs >= 8 cores (have %zu); "
                "best observed %.2fx\n",
                cores, best_speedup);
  }
  return 0;
}
