# Bench-artifact smoke check (cmake -P; no external JSON tooling needed).
#
#   cmake -DBENCH_BIN=<micro_engine> -DWORK_DIR=<scratch dir> \
#         -P check_bench_artifact.cmake
#
# Runs the bench with BGPSIM_JSON pointed at WORK_DIR, restricted to one
# fast benchmark, then validates the dropped BENCH_<bench>.json against
# the bgpsim-bench-1 schema: the schema/bench identity fields, a tables
# array, and at least one table with a title, headers, and a result row.
if(NOT BENCH_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH_BIN=... -DWORK_DIR=... -P check_bench_artifact.cmake")
endif()

get_filename_component(bench_name "${BENCH_BIN}" NAME)
set(artifact "${WORK_DIR}/BENCH_${bench_name}.json")

file(REMOVE "${artifact}")
file(MAKE_DIRECTORY "${WORK_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env BGPSIM_JSON=${WORK_DIR}
          ${BENCH_BIN} --benchmark_filter=BM_RngUniform
  RESULT_VARIABLE rc
  OUTPUT_QUIET
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${bench_name} exited with ${rc}:\n${run_err}")
endif()

if(NOT EXISTS "${artifact}")
  message(FATAL_ERROR "bench did not drop ${artifact}")
endif()
file(READ "${artifact}" content)

foreach(needle
    "{\"schema\": \"bgpsim-bench-1\""
    "\"bench\": \"${bench_name}\""
    "\"tables\": ["
    "\"title\": "
    "\"headers\": "
    "\"rows\": [[\"BM_RngUniform\"")
  string(FIND "${content}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "artifact ${artifact} fails bgpsim-bench-1 validation: missing ${needle}\n${content}")
  endif()
endforeach()

message(STATUS "bench artifact OK: ${artifact}")
