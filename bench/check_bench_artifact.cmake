# Bench-artifact smoke check (cmake -P; no external JSON tooling needed).
#
#   cmake -DBENCH_BIN=<bench binary> -DWORK_DIR=<scratch dir> \
#         [-DBENCH_ARGS="<space-separated argv>"] \
#         [-DBENCH_ENV="<space-separated VAR=VAL pairs>"] \
#         [-DROW_NEEDLE=<first cell of the first expected row>] \
#         [-DCELL_NEEDLES="<space-separated first-cell prefixes, each of \
#          which some row must start with>"] \
#         -P check_bench_artifact.cmake
# BENCH_ARGS/BENCH_ENV are space-separated, not ;-lists: semicolons do not
# survive the add_test -> -D -> re-expansion round trip intact.
#
# Runs the bench with BGPSIM_JSON pointed at WORK_DIR (BENCH_ARGS/BENCH_ENV
# shrink slow benches to one fast data point), then validates the dropped
# BENCH_<bench>.json against the bgpsim-bench-1 schema: the schema/bench
# identity fields, a tables array, and at least one table with a title,
# headers, and a result row (whose first cell is ROW_NEEDLE when given).
if(NOT BENCH_BIN OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH_BIN=... -DWORK_DIR=... -P check_bench_artifact.cmake")
endif()

get_filename_component(bench_name "${BENCH_BIN}" NAME)
set(artifact "${WORK_DIR}/BENCH_${bench_name}.json")

file(REMOVE "${artifact}")
file(MAKE_DIRECTORY "${WORK_DIR}")
separate_arguments(bench_env UNIX_COMMAND "${BENCH_ENV}")
separate_arguments(bench_args UNIX_COMMAND "${BENCH_ARGS}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env BGPSIM_JSON=${WORK_DIR} ${bench_env}
          ${BENCH_BIN} ${bench_args}
  RESULT_VARIABLE rc
  OUTPUT_QUIET
  ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${bench_name} exited with ${rc}:\n${run_err}")
endif()

if(NOT EXISTS "${artifact}")
  message(FATAL_ERROR "bench did not drop ${artifact}")
endif()
file(READ "${artifact}" content)

# NB: needles stay foreach *arguments*, never a list variable — the
# unbalanced "[" inside them would make CMake's list splitting swallow the
# ";" separators and merge the elements.
macro(require_needle needle)
  string(FIND "${content}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "artifact ${artifact} fails bgpsim-bench-1 validation: missing ${needle}\n${content}")
  endif()
endmacro()

foreach(needle
    "{\"schema\": \"bgpsim-bench-1\""
    "\"bench\": \"${bench_name}\""
    "\"tables\": ["
    "\"title\": "
    "\"headers\": "
    "\"rows\": [[")
  require_needle("${needle}")
endforeach()
if(ROW_NEEDLE)
  require_needle("\"rows\": [[\"${ROW_NEEDLE}\"")
endif()
# Each CELL_NEEDLES element must lead some row's first cell (the "[ is
# prepended here, so the list elements themselves stay bracket-free and
# survive CMake list splitting).
if(CELL_NEEDLES)
  separate_arguments(cell_needles UNIX_COMMAND "${CELL_NEEDLES}")
  foreach(cell IN LISTS cell_needles)
    require_needle("[\"${cell}")
  endforeach()
endif()

message(STATUS "bench artifact OK: ${artifact}")
