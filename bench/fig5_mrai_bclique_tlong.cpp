// Figure 5(b): overall looping duration and convergence time vs MRAI value,
// B-Clique of 15 (30 nodes), Tlong.
//
// Paper expectation: B-Clique Tlong convergence is also linearly
// proportional to MRAI, and so is looping duration.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 5(b)", "Tlong in B-Clique-15: metrics vs MRAI");

  std::vector<double> mrais{5, 10, 20, 30, 45};
  if (full_run()) mrais.push_back(60);
  const std::size_t n_trials = trials(2);

  core::Table table{{"MRAI (s)", "convergence (s)", "looping duration (s)",
                     "gap (s)"}};
  std::vector<double> xs, conv, loop;
  for (const double m : mrais) {
    const auto set = run_point(core::TopologyKind::kBClique, 15,
                               core::EventKind::kTlong,
                               bgp::Enhancement::kStandard, m, n_trials);
    xs.push_back(m);
    conv.push_back(set.convergence_time_s.mean);
    loop.push_back(set.looping_duration_s.mean);
    table.add_row({core::fmt(m, 0), metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s),
                   core::fmt(set.convergence_time_s.mean -
                                 set.looping_duration_s.mean,
                             1)});
  }
  table.print(std::cout);
  emit_table(table, "Figure 5(b): Tlong in B-Clique-15 — metrics vs MRAI");

  const auto fc = metrics::fit_line(xs, conv);
  const auto fl = metrics::fit_line(xs, loop);
  std::printf("\nlinear fits: convergence = %.1f + %.2f*M (R2=%.3f); "
              "looping = %.1f + %.2f*M (R2=%.3f)\n",
              fc.intercept, fc.slope, fc.r2, fl.intercept, fl.slope, fl.r2);
  std::printf("\nshape checks vs the paper:\n");
  check(fc.r2 > 0.9, "convergence time linear in MRAI");
  check(fl.r2 > 0.9, "looping duration linear in MRAI");
  return 0;
}
