// Figure 4(b): overall looping duration and convergence time vs B-Clique
// size, Tlong (link [0, n] fails), MRAI 30 s.
//
// Paper expectation: looping duration is typically 30-45 s *shorter* than
// convergence time (the last update is MRAI-delayed after loops resolve),
// and both grow with size.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 4(b)", "Tlong in B-Clique: looping vs convergence");

  std::vector<std::size_t> sizes{5, 10, 15, 20};
  if (full_run()) sizes.push_back(25);
  const std::size_t n_trials = trials(2);

  core::Table table{{"b-clique n (2n nodes)", "convergence (s)",
                     "looping duration (s)", "gap (s)", "TTL exhaustions"}};
  std::vector<double> xs, conv, loop, gaps;
  for (const std::size_t n : sizes) {
    const auto set = run_point(core::TopologyKind::kBClique, n,
                               core::EventKind::kTlong,
                               bgp::Enhancement::kStandard, 30.0, n_trials);
    const double gap = set.convergence_time_s.mean - set.looping_duration_s.mean;
    xs.push_back(static_cast<double>(n));
    conv.push_back(set.convergence_time_s.mean);
    loop.push_back(set.looping_duration_s.mean);
    gaps.push_back(gap);
    table.add_row({std::to_string(n),
                   metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s), core::fmt(gap, 1),
                   core::fmt(set.ttl_exhaustions.mean, 0)});
  }
  table.print(std::cout);
  emit_table(table, "Figure 4(b): Tlong in B-Clique — looping vs convergence");

  std::printf("\nshape checks vs the paper:\n");
  bool gap_in_band = true;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    if (sizes[i] >= 10 && (gaps[i] < 15.0 || gaps[i] > 90.0)) {
      gap_in_band = false;
    }
  }
  check(gap_in_band,
        "Tlong gap (convergence - looping) sits in the tens of seconds");
  check(conv.back() > conv.front(), "convergence grows with size");
  return 0;
}
