// Ablation: message processing delay and Ghost Flushing's overhead.
//
// The paper (§5, footnote 5) notes Ghost Flushing's improvement shrinks in
// large Cliques because the burst of flushing withdrawals occupies the
// (serialized) routing process, delaying the messages that carry real path
// information — and that "the exact turning point depends on the message
// processing time". This ablation varies the processing delay and measures
// GF's convergence next to standard BGP.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: processing delay x Ghost Flushing",
               "withdrawal-flood overhead grows with CPU cost (paper fn.5)");

  const std::size_t n_trials = trials(2);
  std::vector<std::size_t> sizes{10, 20};
  if (full_run()) sizes.push_back(26);

  struct Proc {
    const char* name;
    sim::SimTime lo, hi;
  };
  const std::vector<Proc> procs{
      {"fast (1-5 ms)", sim::SimTime::millis(1), sim::SimTime::millis(5)},
      {"paper (100-500 ms)", sim::SimTime::millis(100),
       sim::SimTime::millis(500)},
  };

  core::Table table{{"clique n", "processing", "BGP conv (s)",
                     "GhostFlush conv (s)", "GF speedup"}};
  std::vector<double> gf_conv_fast, gf_conv_slow;
  for (const std::size_t n : sizes) {
    for (const auto& proc : procs) {
      double conv[2] = {0, 0};
      int idx = 0;
      for (const auto e :
           {bgp::Enhancement::kStandard, bgp::Enhancement::kGhostFlushing}) {
        core::Scenario s;
        s.topology.kind = core::TopologyKind::kClique;
        s.topology.size = n;
        s.event = core::EventKind::kTdown;
        s.bgp = s.bgp.with(e);
        s.processing.min = proc.lo;
        s.processing.max = proc.hi;
        s.seed = 7;
        const auto set =
            core::run_trials(s, core::RunOptions{.trials = n_trials, .jobs = 1});
        conv[idx++] = set.convergence_time_s.mean;
      }
      (proc.lo < sim::SimTime::millis(50) ? gf_conv_fast : gf_conv_slow)
          .push_back(conv[1]);
      table.add_row({std::to_string(n), proc.name, core::fmt(conv[0], 1),
                     core::fmt(conv[1], 1),
                     core::fmt(conv[0] / std::max(conv[1], 1e-9), 1) + "x"});
    }
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks vs the paper:\n");
  bool overhead_grows = true;
  for (std::size_t i = 0; i < gf_conv_fast.size(); ++i) {
    if (gf_conv_slow[i] <= gf_conv_fast[i]) overhead_grows = false;
  }
  check(overhead_grows,
        "Ghost Flushing convergence is worse under expensive processing "
        "(the withdrawal flood occupies the routing process)");
  check(gf_conv_slow.back() > gf_conv_slow.front(),
        "GF overhead grows with clique size (paper fn.5 turning point)");
  return 0;
}
