// Ablation: MRAI jitter.
//
// RFC 1771 suggests jittering the MRAI to 0.75-1.0 of its base value to
// desynchronize routers. The paper runs "30 seconds with a random jitter".
// This ablation compares jitter windows, including none at all: with zero
// jitter all timers expire in lockstep, synchronizing update waves.
#include "common.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: MRAI jitter",
               "jitter desynchronizes MRAI rounds (RFC 1771 suggestion)");

  const std::size_t n_trials = trials(3);
  struct Window {
    const char* name;
    double lo, hi;
  };
  const std::vector<Window> windows{
      {"none (1.00)", 1.0, 1.0},
      {"narrow (0.95-1.00)", 0.95, 1.0},
      {"rfc (0.75-1.00)", 0.75, 1.0},
      {"wide (0.50-1.00)", 0.5, 1.0},
  };

  core::Table table{{"jitter", "convergence (s)", "looping duration (s)",
                     "TTL exhaustions", "looping ratio"}};
  std::vector<double> convs;
  for (const auto& w : windows) {
    core::Scenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = 15;
    s.event = core::EventKind::kTdown;
    s.bgp.jitter_lo = w.lo;
    s.bgp.jitter_hi = w.hi;
    s.seed = 13;
    const auto set =
        core::run_trials(s, core::RunOptions{.trials = n_trials, .jobs = 1});
    convs.push_back(set.convergence_time_s.mean);
    table.add_row({w.name, metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s),
                   core::fmt(set.ttl_exhaustions.mean, 0),
                   core::fmt_pct(set.looping_ratio.mean)});
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks:\n");
  // Jitter shortens the *average* effective MRAI (E[U(lo,hi)]·M), so wider
  // windows trend toward faster convergence; all variants still loop.
  check(convs.back() < convs.front() * 1.05,
        "wider jitter does not slow convergence");
  return 0;
}
