// Figure 5(a): overall looping duration and convergence time vs MRAI value,
// Clique of 15, Tdown.
//
// Paper expectation (Observation 1): both metrics are linearly proportional
// to the MRAI value (above the topology-specific minimum, per Griffin &
// Premore).
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 5(a)", "Tdown in Clique-15: metrics vs MRAI");

  std::vector<double> mrais{5, 10, 20, 30, 45};
  if (full_run()) mrais.push_back(60);
  const std::size_t n_trials = trials(2);

  core::Table table{{"MRAI (s)", "convergence (s)", "looping duration (s)",
                     "gap (s)"}};
  std::vector<double> xs, conv, loop;
  for (const double m : mrais) {
    const auto set = run_point(core::TopologyKind::kClique, 15,
                               core::EventKind::kTdown,
                               bgp::Enhancement::kStandard, m, n_trials);
    xs.push_back(m);
    conv.push_back(set.convergence_time_s.mean);
    loop.push_back(set.looping_duration_s.mean);
    table.add_row({core::fmt(m, 0), metrics::mean_pm(set.convergence_time_s),
                   metrics::mean_pm(set.looping_duration_s),
                   core::fmt(set.convergence_time_s.mean -
                                 set.looping_duration_s.mean,
                             1)});
  }
  table.print(std::cout);
  emit_table(table, "Figure 5(a): Tdown in Clique-15 — metrics vs MRAI");

  const auto fc = metrics::fit_line(xs, conv);
  const auto fl = metrics::fit_line(xs, loop);
  std::printf("\nlinear fits: convergence = %.1f + %.2f*M (R2=%.3f); "
              "looping = %.1f + %.2f*M (R2=%.3f)\n",
              fc.intercept, fc.slope, fc.r2, fl.intercept, fl.slope, fl.r2);
  std::printf("\nshape checks vs the paper:\n");
  check(fc.r2 > 0.95, "convergence time linear in MRAI");
  check(fl.r2 > 0.95, "looping duration linear in MRAI");
  check(fc.slope > 0 && fl.slope > 0, "positive slopes");
  return 0;
}
