// Figure 8: the four convergence enhancements under Tdown.
//   (a) TTL exhaustions normalized by standard BGP, Clique sizes
//   (b) convergence time, Clique sizes
//   (c) TTL exhaustions, Internet-derived sizes
//   (d) convergence time, Internet-derived sizes
//
// Paper expectations: Assertion converges Cliques near-instantly (best
// there); Ghost Flushing cuts looping by >=80% and is best on
// Internet-derived graphs; SSLD helps modestly; WRATE is mixed.
#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 8", "Tdown with convergence enhancements");
  const std::size_t n_trials = trials(2);

  const std::vector<bgp::Enhancement> protos{
      bgp::Enhancement::kStandard, bgp::Enhancement::kSsld,
      bgp::Enhancement::kWrate, bgp::Enhancement::kAssertion,
      bgp::Enhancement::kGhostFlushing};

  struct Cell {
    double exhaustions = 0;
    double convergence = 0;
  };

  const auto sweep = [&](core::TopologyKind kind,
                         const std::vector<std::size_t>& sizes,
                         const char* what)
      -> std::vector<std::vector<Cell>> {  // [size][proto]
    std::vector<std::vector<Cell>> grid;
    for (const std::size_t n : sizes) {
      std::vector<Cell> row;
      for (const auto proto : protos) {
        const auto set = run_point(kind, n, core::EventKind::kTdown, proto,
                                   30.0, n_trials, /*seed=*/3);
        row.push_back(
            Cell{set.ttl_exhaustions.mean, set.convergence_time_s.mean});
      }
      grid.push_back(std::move(row));
      std::printf("  ... %s n=%zu done\n", what, n);
    }
    return grid;
  };

  const auto print_panels = [&](const char* label_a, const char* label_b,
                                const std::vector<std::size_t>& sizes,
                                const std::vector<std::vector<Cell>>& grid) {
    core::banner(std::cout, label_a);
    core::Table ta{{"size", "BGP", "SSLD", "WRATE", "Assertion", "GhostFlush"}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double base = std::max(grid[i][0].exhaustions, 1.0);
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (std::size_t p = 0; p < protos.size(); ++p) {
        row.push_back(core::fmt(grid[i][p].exhaustions / base, 2));
      }
      ta.add_row(std::move(row));
    }
    ta.print(std::cout);
    maybe_csv(ta);

    core::banner(std::cout, label_b);
    core::Table tb{{"size", "BGP", "SSLD", "WRATE", "Assertion", "GhostFlush"}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::string> row{std::to_string(sizes[i])};
      for (std::size_t p = 0; p < protos.size(); ++p) {
        row.push_back(core::fmt(grid[i][p].convergence, 1));
      }
      tb.add_row(std::move(row));
    }
    tb.print(std::cout);
    maybe_csv(tb);
  };

  std::vector<std::size_t> clique_sizes{5, 10, 15};
  if (full_run()) {
    clique_sizes.push_back(20);
    clique_sizes.push_back(25);
  }
  const auto clique = sweep(core::TopologyKind::kClique, clique_sizes,
                            "clique");
  print_panels("Figure 8(a): TTL exhaustions normalized by standard BGP "
               "(Clique)",
               "Figure 8(b): convergence time in seconds (Clique)",
               clique_sizes, clique);

  std::vector<std::size_t> inet_sizes{29, 48};
  if (full_run()) {
    inet_sizes.push_back(75);
    inet_sizes.push_back(110);
  }
  const auto inet = sweep(core::TopologyKind::kInternet, inet_sizes,
                          "internet");
  print_panels("Figure 8(c): TTL exhaustions normalized by standard BGP "
               "(Internet-derived)",
               "Figure 8(d): convergence time in seconds (Internet-derived)",
               inet_sizes, inet);

  // ---- shape checks ----
  std::printf("\nshape checks vs the paper:\n");
  const std::size_t last = clique_sizes.size() - 1;
  enum { kBgp = 0, kSsld = 1, kWrate = 2, kAssert = 3, kGhost = 4 };
  check(clique[last][kAssert].convergence < 2.0,
        "Assertion converges Clique Tdown near-instantly");
  check(clique[last][kAssert].exhaustions <
            0.05 * std::max(clique[last][kBgp].exhaustions, 1.0),
        "Assertion eliminates essentially all Clique Tdown looping");
  check(clique[last][kGhost].convergence <
            0.3 * clique[last][kBgp].convergence,
        "Ghost Flushing slashes Clique Tdown convergence");
  check(clique[last][kSsld].convergence < clique[last][kBgp].convergence,
        "SSLD improves Clique Tdown convergence");

  const std::size_t ilast = inet_sizes.size() - 1;
  check(inet[ilast][kGhost].exhaustions <
            0.2 * std::max(inet[ilast][kBgp].exhaustions, 1.0),
        "Ghost Flushing cuts Internet Tdown looping by >= 80%");
  check(inet[ilast][kGhost].convergence < inet[ilast][kBgp].convergence,
        "Ghost Flushing gives the best Internet Tdown convergence");
  check(inet[ilast][kWrate].convergence > inet[ilast][kBgp].convergence,
        "WRATE worsens Internet Tdown convergence");
  return 0;
}
