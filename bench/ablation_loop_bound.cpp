// Ablation A1 (§3.2 analysis): the worst-case duration of an m-node loop is
// (m-1) × M. We measure, per MRAI value, the longest individual loop the
// detector records in Clique Tdown runs, normalized by (m-1) so the series
// should scale ~linearly with M and never exceed the bound (plus nodal
// slack).
#include <algorithm>

#include "common.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: loop-duration bound",
               "single m-node loop lasts at most (m-1) x MRAI");

  const std::size_t n_trials = trials(2);
  std::vector<double> mrais{5, 10, 20, 30};
  if (full_run()) mrais.push_back(45);

  core::Table table{{"MRAI (s)", "loops observed", "max size m",
                     "max duration (s)", "max duration/(m-1) (s)",
                     "bound respected"}};
  std::vector<double> xs, normalized;
  bool all_respected = true;
  for (const double m : mrais) {
    double worst_norm = 0;
    double worst_duration = 0;
    std::size_t worst_size = 0;
    std::size_t loop_count = 0;
    bool respected = true;
    for (std::size_t t = 0; t < n_trials; ++t) {
      core::Scenario s;
      s.topology.kind = core::TopologyKind::kClique;
      s.topology.size = 12;
      s.event = core::EventKind::kTdown;
      s.bgp.mrai = sim::SimTime::seconds(m);
      s.seed = 21 + t;
      const auto out = core::run_experiment(s);
      loop_count += out.metrics.loops.size();
      for (const auto& loop : out.metrics.loops) {
        const double d =
            loop.duration_seconds(out.metrics.last_update_at);
        const double denom = static_cast<double>(loop.size()) - 1.0;
        worst_norm = std::max(worst_norm, d / denom);
        if (d > worst_duration) {
          worst_duration = d;
          worst_size = loop.size();
        }
        // Nodal slack: processing can add ~0.5 s per traversed hop plus
        // queueing; allow 3 s per member.
        if (d > denom * m + 3.0 * static_cast<double>(loop.size()) + 2.0) {
          respected = false;
        }
      }
    }
    all_respected = all_respected && respected;
    xs.push_back(m);
    normalized.push_back(worst_norm);
    table.add_row({core::fmt(m, 0), std::to_string(loop_count),
                   std::to_string(worst_size), core::fmt(worst_duration, 1),
                   core::fmt(worst_norm, 1), respected ? "yes" : "NO"});
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks vs the paper:\n");
  check(all_respected,
        "every observed loop within (m-1)*M plus nodal slack");
  const auto f = metrics::fit_line(xs, normalized);
  check(f.slope > 0,
        "worst per-hop loop duration grows with MRAI (slope " +
            core::fmt(f.slope, 2) + ")");
  return 0;
}
