// Figure 7: number of TTL exhaustions and looping ratio vs MRAI value.
// Panel (a): Tdown in Clique-15; panel (b): Tlong in B-Clique-15.
//
// Paper expectation (Observation 2): exhaustions linear in MRAI; looping
// ratio approximately constant in MRAI. This doubles as ablation A2 (ratio
// invariance) from DESIGN.md.
#include "common.hpp"

namespace {

struct Panel {
  std::vector<double> mrais;
  std::vector<double> exhaustions;
  std::vector<double> ratios;
};

}  // namespace

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Figure 7", "TTL exhaustions & looping ratio vs MRAI");
  const std::size_t n_trials = trials(2);
  std::vector<double> mrais{5, 10, 20, 30, 45};
  if (full_run()) mrais.push_back(60);

  const auto run_panel = [&](core::TopologyKind kind, std::size_t size,
                             core::EventKind event, const char* title) {
    core::banner(std::cout, title);
    core::Table t{{"MRAI (s)", "TTL exhaustions", "looping ratio"}};
    Panel p;
    for (const double m : mrais) {
      const auto set = run_point(kind, size, event,
                                 bgp::Enhancement::kStandard, m, n_trials);
      p.mrais.push_back(m);
      p.exhaustions.push_back(set.ttl_exhaustions.mean);
      p.ratios.push_back(set.looping_ratio.mean);
      t.add_row({core::fmt(m, 0), core::fmt(set.ttl_exhaustions.mean, 0),
                 core::fmt_pct(set.looping_ratio.mean, 1)});
    }
    t.print(std::cout);
    maybe_csv(t);
    return p;
  };

  const Panel a = run_panel(core::TopologyKind::kClique, 15,
                            core::EventKind::kTdown,
                            "Figure 7(a): Tdown in Clique-15");
  const Panel b = run_panel(core::TopologyKind::kBClique, 15,
                            core::EventKind::kTlong,
                            "Figure 7(b): Tlong in B-Clique-15");

  std::printf("\nshape checks vs the paper:\n");
  const auto fa = metrics::fit_line(a.mrais, a.exhaustions);
  check(fa.r2 > 0.9 && fa.slope > 0,
        "Clique Tdown exhaustions linear in MRAI (R2=" + core::fmt(fa.r2, 3) +
            ")");
  const auto fb = metrics::fit_line(b.mrais, b.exhaustions);
  check(fb.r2 > 0.85 && fb.slope > 0,
        "B-Clique Tlong exhaustions linear in MRAI (R2=" +
            core::fmt(fb.r2, 3) + ")");

  const auto sa = metrics::summarize(a.ratios);
  check(sa.max - sa.min < 0.25,
        "Clique Tdown looping ratio ~constant across MRAI (spread " +
            core::fmt_pct(sa.max - sa.min, 1) + ")");
  const auto sb = metrics::summarize(b.ratios);
  check(sb.max - sb.min < 0.25,
        "B-Clique Tlong looping ratio ~constant across MRAI (spread " +
            core::fmt_pct(sb.max - sb.min, 1) + ")");
  return 0;
}
