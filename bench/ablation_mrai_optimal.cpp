// Ablation: the "optimal MRAI" effect (paper footnote 3, after Griffin &
// Premore): convergence time is linear in MRAI only *above* a
// topology-specific optimal value; below it, update floods swamp the
// (serialized, 0.1-0.5 s per message) routing processes and convergence
// worsens again as MRAI shrinks.
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace bgpsim;
  using namespace bgpsim::bench;
  using bgpsim::bench::check;  // not the bgpsim::check namespace

  print_header("Ablation: optimal MRAI",
               "convergence vs MRAI is U-shaped at the low end (fn.3)");

  const std::size_t n_trials = trials(2);
  std::vector<double> mrais{0.0, 0.25, 0.5, 1, 2, 5, 10, 20, 30};

  core::Table table{{"MRAI (s)", "convergence (s)", "updates sent",
                     "TTL exhaustions"}};
  std::vector<double> convs;
  for (const double m : mrais) {
    core::Scenario s;
    s.topology.kind = core::TopologyKind::kClique;
    s.topology.size = 12;
    s.event = core::EventKind::kTdown;
    s.bgp.mrai = sim::SimTime::seconds(m);
    s.seed = 19;
    const auto set =
        core::run_trials(s, core::RunOptions{.trials = n_trials, .jobs = 1});
    convs.push_back(set.convergence_time_s.mean);
    double updates = 0;
    for (const auto& r : set.runs) {
      updates += static_cast<double>(r.metrics.updates_sent);
    }
    table.add_row({core::fmt(m, 2), metrics::mean_pm(set.convergence_time_s),
                   core::fmt(updates / static_cast<double>(set.runs.size()), 0),
                   core::fmt(set.ttl_exhaustions.mean, 0)});
  }
  table.print(std::cout);
  maybe_csv(table);

  std::printf("\nshape checks vs the paper (fn.3 / Griffin-Premore):\n");
  const std::size_t min_idx = static_cast<std::size_t>(
      std::min_element(convs.begin(), convs.end()) - convs.begin());
  check(min_idx > 0 && min_idx + 1 < convs.size(),
        "an interior optimal MRAI exists (minimum at M=" +
            core::fmt(mrais[min_idx], 2) + "s)");
  check(convs.back() > convs[min_idx],
        "above the optimum, convergence grows with MRAI");
  check(convs.front() > convs[min_idx],
        "below the optimum, update floods slow convergence");
  return 0;
}
